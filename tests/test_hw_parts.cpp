/**
 * @file
 * Tests for sensors, the NV buffer, and the RTC.
 */

#include <gtest/gtest.h>

#include "hw/nv_buffer.hh"
#include "hw/rtc.hh"
#include "hw/sensor.hh"
#include "sim/logging.hh"

namespace neofog {
namespace {

using namespace neofog::literals;

TEST(Sensor, Tmp101MatchesPaper)
{
    const SensorSpec s = sensors::tmp101();
    EXPECT_EQ(s.initLatency, ticksFromMs(566.0));
    EXPECT_EQ(s.sampleLatency, ticksFromMs(0.283));
    EXPECT_EQ(s.bytesPerSample, 2u);
}

TEST(Sensor, CatalogIsDistinct)
{
    EXPECT_NE(sensors::lis331dlh().partName, sensors::tmp101().partName);
    EXPECT_GT(sensors::lupa1399().bytesPerSample,
              sensors::uvMeter().bytesPerSample);
}

TEST(Sensor, InitThenSample)
{
    Sensor sensor(sensors::tmp101());
    EXPECT_FALSE(sensor.initialized());
    const auto init = sensor.initialize();
    EXPECT_TRUE(sensor.initialized());
    EXPECT_EQ(init.duration, ticksFromMs(566.0));
    // Second init is free.
    const auto again = sensor.initialize();
    EXPECT_EQ(again.duration, 0);
    EXPECT_DOUBLE_EQ(again.energy.joules(), 0.0);
}

TEST(Sensor, SampleCostScalesWithCount)
{
    Sensor sensor(sensors::tmp101());
    sensor.initialize();
    const auto one = sensor.sample(1);
    const auto ten = sensor.sample(10);
    EXPECT_NEAR(static_cast<double>(ten.duration),
                10.0 * static_cast<double>(one.duration), 1.0);
    EXPECT_NEAR(ten.energy.joules(), 10.0 * one.energy.joules(), 1e-15);
    EXPECT_EQ(sensor.sampleBytes(10), 20u);
}

TEST(Sensor, PowerFailureDropsInit)
{
    Sensor sensor(sensors::uvMeter());
    sensor.initialize();
    sensor.onPowerFailure();
    EXPECT_FALSE(sensor.initialized());
}

TEST(NvBuffer, PushPopAccounting)
{
    NvBuffer buf({1024, 1.0, Energy::fromNanojoules(1.0),
                  Energy::fromNanojoules(0.5)});
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.push(600), 600u);
    EXPECT_EQ(buf.size(), 600u);
    EXPECT_EQ(buf.push(600), 424u); // 176 dropped
    EXPECT_TRUE(buf.full());
    EXPECT_EQ(buf.droppedTotal(), 176u);
    EXPECT_EQ(buf.pop(1000), 1000u);
    EXPECT_EQ(buf.pop(1000), 24u);
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.acceptedTotal(), 1024u);
}

TEST(NvBuffer, InterruptThreshold)
{
    NvBuffer buf({1000, 0.5, Energy::zero(), Energy::zero()});
    buf.push(499);
    EXPECT_FALSE(buf.interruptPending());
    buf.push(1);
    EXPECT_TRUE(buf.interruptPending());
}

TEST(NvBuffer, DiscardAllCountsDrops)
{
    NvBuffer buf({1000, 1.0, Energy::zero(), Energy::zero()});
    buf.push(300);
    buf.discardAll();
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.droppedTotal(), 300u);
}

TEST(NvBuffer, WriteReadEnergy)
{
    NvBuffer buf({64 * 1024, 1.0, Energy::fromNanojoules(1.1),
                  Energy::fromNanojoules(0.3)});
    EXPECT_NEAR(buf.writeEnergy(1000).nanojoules(), 1100.0, 1e-9);
    EXPECT_NEAR(buf.readEnergy(1000).nanojoules(), 300.0, 1e-9);
}

TEST(NvBuffer, RejectsBadConfig)
{
    EXPECT_THROW(NvBuffer({0, 1.0, Energy::zero(), Energy::zero()}),
                 FatalError);
    EXPECT_THROW(NvBuffer({10, 0.0, Energy::zero(), Energy::zero()}),
                 FatalError);
}

TEST(Rtc, NextWakeAligned)
{
    Rtc::Config cfg;
    cfg.interval = 12 * kSec;
    Rtc rtc(cfg);
    EXPECT_EQ(rtc.nextWake(0), 12 * kSec);
    EXPECT_EQ(rtc.nextWake(1), 12 * kSec);
    EXPECT_EQ(rtc.nextWake(12 * kSec), 24 * kSec);
    EXPECT_EQ(rtc.nextWake(12 * kSec - 1), 12 * kSec);
}

TEST(Rtc, NextWakeWithPhaseAndMultiplier)
{
    Rtc::Config cfg;
    cfg.interval = 10 * kSec;
    Rtc rtc(cfg);
    // 3 clones: phases 0, 1, 2, stride 30 s.
    EXPECT_EQ(rtc.nextWake(0, 1, 3), 10 * kSec);
    EXPECT_EQ(rtc.nextWake(10 * kSec, 1, 3), 40 * kSec);
    EXPECT_EQ(rtc.nextWake(0, 2, 3), 20 * kSec);
    EXPECT_EQ(rtc.nextWake(25 * kSec, 0, 3), 30 * kSec);
}

TEST(Rtc, StaysSyncedWhilePowered)
{
    Rtc rtc(Rtc::Config{});
    for (int i = 0; i < 100; ++i)
        rtc.advance(12 * kSec, Energy::fromMicrojoules(50.0));
    EXPECT_TRUE(rtc.synchronized());
    EXPECT_EQ(rtc.desyncCount(), 0u);
}

TEST(Rtc, DesyncsWhenCapEmpties)
{
    Rtc::Config cfg;
    cfg.cap.initial = Energy::fromMicrojoules(50.0);
    cfg.cap.capacity = Energy::fromMillijoules(1.0);
    cfg.draw = Power::fromMicrowatts(1.0);
    Rtc rtc(cfg);
    // 50 uJ at 1 uW draw + 0.5 uW cap leakage = ~33 s of life.
    rtc.advance(25 * kSec, Energy::zero());
    EXPECT_TRUE(rtc.synchronized());
    rtc.advance(40 * kSec, Energy::zero());
    EXPECT_FALSE(rtc.synchronized());
    EXPECT_EQ(rtc.desyncCount(), 1u);
    rtc.resynchronize();
    EXPECT_TRUE(rtc.synchronized());
}

TEST(Rtc, RejectsBadConfig)
{
    Rtc::Config cfg;
    cfg.interval = 0;
    EXPECT_THROW(Rtc{cfg}, FatalError);
    Rtc::Config cfg2;
    cfg2.chargePriority = 2.0;
    EXPECT_THROW(Rtc{cfg2}, FatalError);
}

} // namespace
} // namespace neofog
