/**
 * @file
 * Tests for the declare-once metric registry, the report_io
 * serialization layer, and the time-series probes.
 *
 * The contract under test (DESIGN.md "Observability"): every
 * SystemReport field is declared exactly once in its registry, and
 * merge, equality, printing, JSON/CSV serialization, and cross-seed
 * aggregation all derive from that list.  Probes must never perturb
 * results and must be bit-identical across thread counts (this file is
 * in the `parallel` ctest label for the TSan lane).
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "fog/experiment.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/report_io.hh"
#include "sim/rng.hh"

namespace neofog {
namespace {

/**
 * A report with every stored field randomized, including doubles with
 * long mantissas (the worst case for text round-trips).
 */
SystemReport
randomReport(Rng &rng)
{
    SystemReport r;
    for (const auto &d : SystemReport::metrics().metrics()) {
        if (d.derived())
            continue;
        if (d.integral())
            d.setU64(r, rng.next() >> 8);
        else
            d.set(r, rng.uniform(0.0, 1e6) + rng.uniform());
    }
    return r;
}

TEST(MetricRegistry, EveryFieldIsDeclaredExactlyOnce)
{
    const auto &reg = SystemReport::metrics();
    // 21 counters + idealPackages come to 22 u64s; 7 double gauges.
    // If this fails after adding a SystemReport field, add its
    // MetricDef line in system_report.cc (and nothing else).
    // R6.metric in tools/neofog_lint catches the same omission by
    // name (&SystemReport::field must appear as a MetricDef); this
    // sizeof pin is the layout backstop it can't provide.
    EXPECT_EQ(reg.storedCount() * sizeof(std::uint64_t),
              sizeof(SystemReport));

    std::set<std::string> names;
    for (const auto &d : reg.metrics()) {
        EXPECT_TRUE(names.insert(d.name).second)
            << "duplicate metric " << d.name;
        EXPECT_NE(std::string(d.description), "");
    }
    EXPECT_NE(reg.find("total_processed"), nullptr);
    EXPECT_EQ(reg.find("no_such_metric"), nullptr);
}

TEST(MetricRegistry, MergeMatchesManualFieldWiseMerge)
{
    Rng rng(42);
    for (int trial = 0; trial < 20; ++trial) {
        SystemReport a = randomReport(rng);
        const SystemReport b = randomReport(rng);

        // The pre-registry merge, spelled out by hand for the headline
        // fields; the registry must agree on every one of them.
        const SystemReport before = a;
        a.merge(b);

        EXPECT_EQ(a.wakeups, before.wakeups + b.wakeups);
        EXPECT_EQ(a.packagesToCloud,
                  before.packagesToCloud + b.packagesToCloud);
        EXPECT_EQ(a.packagesInFog,
                  before.packagesInFog + b.packagesInFog);
        EXPECT_EQ(a.tasksBalancedAway,
                  before.tasksBalancedAway + b.tasksBalancedAway);
        EXPECT_EQ(a.rtcResyncs, before.rtcResyncs + b.rtcResyncs);
        EXPECT_EQ(a.spentComputeMj,
                  before.spentComputeMj + b.spentComputeMj);
        EXPECT_EQ(a.harvestedMj, before.harvestedMj + b.harvestedMj);
        // Config-rule metric: scenario-derived, never summed.
        EXPECT_EQ(a.idealPackages, before.idealPackages);
    }
}

TEST(MetricRegistry, EqualityIsExactPerField)
{
    Rng rng(7);
    SystemReport a = randomReport(rng);
    SystemReport b = a;
    EXPECT_TRUE(a == b);
    b.wakeups += 1;
    EXPECT_FALSE(a == b);
    b = a;
    b.spentTxMj += 1e-9;
    EXPECT_FALSE(a == b);
}

TEST(ReportIo, JsonRoundTripIsLossless)
{
    Rng rng(2018);
    for (int trial = 0; trial < 20; ++trial) {
        const SystemReport r = randomReport(rng);
        std::ostringstream os;
        r.toJson(os);
        const auto doc = report_io::parseJson(os.str());
        const SystemReport back = SystemReport::fromJson(doc);
        EXPECT_TRUE(r == back) << "JSON round-trip diverged:\n"
                               << os.str();
    }
}

TEST(ReportIo, CsvRoundTripIsLossless)
{
    Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        const SystemReport r = randomReport(rng);
        std::ostringstream os;
        r.toCsv(os);
        std::istringstream is(os.str());
        const SystemReport back = SystemReport::fromCsv(is);
        EXPECT_TRUE(r == back) << "CSV round-trip diverged:\n"
                               << os.str();
    }
}

TEST(ReportIo, FromJsonRejectsWrongSchemaAndMissingMetrics)
{
    EXPECT_THROW(SystemReport::fromJson(report_io::parseJson(
                     R"({"schema":"bogus-v1"})")),
                 FatalError);
    EXPECT_THROW(SystemReport::fromJson(report_io::parseJson(
                     R"({"schema":"neofog-report-v1","metrics":{}})")),
                 FatalError);
}

TEST(ReportIo, BenchSchemaValidator)
{
    const auto good = report_io::parseJson(
        R"({"schema":"neofog-bench-v1","bench":"x",)"
        R"("results":{"a":1.5},"notes":{}})");
    EXPECT_EQ(report_io::validateBenchJson(good), "");

    const auto bad = report_io::parseJson(
        R"({"schema":"neofog-bench-v1","results":{"a":1.5}})");
    EXPECT_NE(report_io::validateBenchJson(bad), "");
}

TEST(RingSeries, WrapsKeepingNewestSamples)
{
    RingSeries ring(4);
    for (int i = 0; i < 10; ++i)
        ring.push(i * 100, static_cast<double>(i));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.pushed(), 10u);
    EXPECT_EQ(ring.dropped(), 6u);
    const auto pts = ring.snapshot();
    ASSERT_EQ(pts.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(pts[i].when, static_cast<Tick>((6 + i) * 100));
        EXPECT_EQ(pts[i].value, static_cast<double>(6 + i));
    }

    RingSeries disabled(0);
    disabled.push(0, 1.0);
    EXPECT_TRUE(disabled.empty());
    EXPECT_EQ(disabled.dropped(), 1u);
}

/** Small multi-chain scenario for aggregation / probe tests. */
ScenarioConfig
probeScenario(unsigned threads)
{
    ScenarioConfig cfg = presets::fig10(presets::fiosNeofog(), 0);
    cfg.chains = 3;
    cfg.horizon = 30 * kMin;
    cfg.threads = threads;
    cfg.seed = 11;
    cfg.probes.enabled = true;
    cfg.probes.capacity = 64;
    return cfg;
}

TEST(Aggregation, MatchesManualScalarStatExactly)
{
    ScenarioConfig cfg = presets::fig10(presets::fiosNeofog(), 0);
    cfg.horizon = 20 * kMin;
    const AggregateReport agg = ExperimentRunner::runSeeds(
        cfg, {.runs = 4, .baseSeed = 100});

    const auto &defs = SystemReport::metrics().metrics();
    ASSERT_EQ(agg.stats.size(), defs.size());
    for (std::size_t m = 0; m < defs.size(); ++m) {
        ScalarStat manual;
        for (const SystemReport &r : agg.reports)
            manual.sample(defs[m].get(r));
        EXPECT_EQ(agg.stats[m].count(), manual.count());
        EXPECT_EQ(agg.stats[m].mean(), manual.mean())
            << defs[m].name;
        EXPECT_EQ(agg.stats[m].stddev(), manual.stddev())
            << defs[m].name;
        EXPECT_EQ(agg.stats[m].min(), manual.min()) << defs[m].name;
        EXPECT_EQ(agg.stats[m].max(), manual.max()) << defs[m].name;
    }
    EXPECT_THROW(agg.stat("no_such_metric"), FatalError);
    EXPECT_EQ(&agg.stat("yield"), &agg.stats[
        static_cast<std::size_t>(
            SystemReport::metrics().find("yield") - defs.data())]);
}

TEST(Probes, DoNotPerturbSimulationResults)
{
    ScenarioConfig with = probeScenario(1);
    ScenarioConfig without = with;
    without.probes.enabled = false;
    const SystemReport a = FogSystem(with).run();
    const SystemReport b = FogSystem(without).run();
    EXPECT_TRUE(a == b);
}

TEST(Probes, BitIdenticalAcrossThreadCounts)
{
    FogSystem serial(probeScenario(1));
    FogSystem threaded(probeScenario(4));
    const SystemReport ra = serial.run();
    const SystemReport rb = threaded.run();
    EXPECT_TRUE(ra == rb);

    const auto sa = serial.probeSeries();
    const auto sb = threaded.probeSeries();
    ASSERT_EQ(sa.size(), sb.size());
    ASSERT_EQ(sa.size(), 3u * 4u); // 3 chains x 4 probe streams
    for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i].name, sb[i].name);
        EXPECT_EQ(sa[i].unit, sb[i].unit);
        ASSERT_EQ(sa[i].points.size(), sb[i].points.size())
            << sa[i].name;
        EXPECT_FALSE(sa[i].points.empty()) << sa[i].name;
        for (std::size_t p = 0; p < sa[i].points.size(); ++p) {
            EXPECT_EQ(sa[i].points[p].when, sb[i].points[p].when);
            EXPECT_EQ(sa[i].points[p].value, sb[i].points[p].value)
                << sa[i].name << " point " << p;
        }
    }
}

TEST(Probes, DecimationAndCapacityBoundTheRings)
{
    ScenarioConfig cfg = probeScenario(1);
    cfg.probes.capacity = 8;
    cfg.probes.everySlots = 4;
    FogSystem sys(cfg);
    sys.run();
    for (const auto &s : sys.probeSeries()) {
        EXPECT_LE(s.points.size(), 8u) << s.name;
        ASSERT_GE(s.points.size(), 2u) << s.name;
        // Samples land on the decimated slot grid.
        EXPECT_EQ((s.points[1].when - s.points[0].when) %
                      (4 * cfg.slotInterval),
                  0)
            << s.name;
    }
}

TEST(AggregateReport, SerializesBothWays)
{
    ScenarioConfig cfg = presets::fig10(presets::fiosNeofog(), 0);
    cfg.horizon = 20 * kMin;
    const AggregateReport agg = ExperimentRunner::runSeeds(
        cfg, {.runs = 2, .baseSeed = 5});

    std::ostringstream js;
    agg.toJson(js);
    const auto doc = report_io::parseJson(js.str());
    EXPECT_EQ(doc.find("schema")->asString(), "neofog-aggregate-v1");

    std::ostringstream cs;
    agg.toCsv(cs);
    EXPECT_NE(cs.str().find("metric,count,mean,stddev,min,max"),
              std::string::npos);
    EXPECT_NE(cs.str().find("total_processed"), std::string::npos);
}

} // namespace
} // namespace neofog
