// Fixture: direct stream output in library code.  Linted under the
// logical path src/node/r3_observability.cc (never compiled).
#include <cstdio>
#include <iostream>

namespace neofog {

void
chattyDebugDump(int wakeups)
{
    std::cout << "wakeups: " << wakeups << "\n"; // R3: cout in src/
    std::printf("wakeups: %d\n", wakeups);       // R3: printf in src/
    std::fprintf(stderr, "oops\n");              // R3: fprintf in src/
}

} // namespace neofog
