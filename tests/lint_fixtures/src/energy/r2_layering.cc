// Fixture: upward include out of the energy layer.  Linted under the
// logical path src/energy/r2_layering.cc (never compiled).
#include "energy/capacitor.hh" // fine: own layer
#include "fog/fog_system.hh"   // R2: energy must not reach up into fog
#include "node/node.hh"        // R2: nor sideways-up into node
#include "sim/units.hh"        // fine: sim is below everything

namespace neofog {

double
peekYield(const FogSystem &sys)
{
    return 0.0 * sizeof(sys);
}

} // namespace neofog
