// Fixture: a fully conforming header — guard follows the NEOFOG_
// convention, includes stay in-layer, strings and comments that
// mention banned tokens like rand( or std::cout must not trip the
// token passes.  Logical path src/sim/clean.hh (never compiled).

#ifndef NEOFOG_SIM_CLEAN_HH
#define NEOFOG_SIM_CLEAN_HH

#include <string>

#include "sim/rng.hh"

namespace neofog {

/** Draw from a forked stream; mentions time() only in this comment. */
inline double
cleanDraw(Rng &parent)
{
    Rng child = parent.fork();
    const std::string decoy = "calls rand( and std::cout << nothing";
    return child.uniform() + (decoy.empty() ? 1.0 : 0.0);
}

} // namespace neofog

#endif // NEOFOG_SIM_CLEAN_HH
