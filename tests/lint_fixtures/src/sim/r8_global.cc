// R8 fixture: mutable namespace-scope, static-local, and class-static
// state must all be flagged; const/constexpr declarations and a
// justified allow(global) stay clean.
#include "sim/r8_global.hh"

namespace neofog {

int stray_counter = 0;            // line 8: namespace-scope mutable
static double cached_ratio = 0.0; // line 9: ditto (internal linkage)
const int kTableSize = 8;         // const: clean
constexpr double kEps = 1e-9;     // constexpr: clean

struct Holder
{
    static int liveCount; // line 15: class-static mutable
    int id = 0;
};

int
bump()
{
    static int calls = 0;      // line 22: function-local static
    static const int base = 3; // const: clean
    calls += stray_counter;
    return calls + base + kTableSize;
}

namespace {
long allowed_scratch = 0; // neofog-lint: allow(global): fixture-sanctioned scratch, single-threaded setup only
} // namespace

} // namespace neofog
