// Fixture: every line below trips R1.determinism.  Linted under the
// logical path src/sim/r1_determinism.cc (never compiled).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

#include "sim/rng.hh"

namespace neofog {

double
ambientEntropy()
{
    std::random_device dev;                       // R1: random_device
    const auto wall = std::time(nullptr);         // R1: time()
    const auto now =
        std::chrono::system_clock::now();         // R1: system_clock
    const int legacy = std::rand();               // R1: rand()
    Rng rogue(0xBADull);                          // R1: stray seeding
    (void)now;
    return static_cast<double>(dev() + wall + legacy) + rogue.uniform();
}

} // namespace neofog
