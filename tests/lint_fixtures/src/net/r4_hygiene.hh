// Fixture: header with no include guard and a namespace leak.
// Linted under the logical path src/net/r4_hygiene.hh (never
// compiled, never included).
#include <string>

using namespace std; // R4: leaks into every includer

namespace neofog {

inline string
frameName(int kind)
{
    return "frame-" + to_string(kind);
}

} // namespace neofog
