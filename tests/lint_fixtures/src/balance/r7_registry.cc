// R7 fixture: `ghost_knob` is declared but never read in the builder
// (dead knob or typo), and `undocumented` carries empty docs — the
// registry-coverage pass must flag both; `alpha` is read and
// documented, so it stays clean.
#include "balance/r7_registry.hh"

namespace neofog {

void
registerFixturePolicies(PolicyRegistry &reg)
{
    reg.add({"fixture",
             "r7 fixture policy",
             {{"alpha", ParamType::Double, ParamValue::ofDouble(0.5),
               "smoothing factor, in (0, 1]"},
              {"ghost_knob", ParamType::Int, ParamValue::ofInt(1),
               "declared but never read below"},
              {"undocumented", ParamType::Bool,
               ParamValue::ofBool(false), ""}},
             [](const ParamSet &p) {
                 return makeFixturePolicy(p.d("alpha"),
                                          p.b("undocumented"));
             }});
}

} // namespace neofog
