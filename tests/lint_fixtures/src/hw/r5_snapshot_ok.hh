// R5 fixture, clean variant: every member is either archived,
// const/reference (construction-derived by type), justified with
// allow(snapshot), or owned by a registry-walked serialize() that
// delegates coverage to R6.
#ifndef NEOFOG_HW_R5_SNAPSHOT_OK_HH
#define NEOFOG_HW_R5_SNAPSHOT_OK_HH

namespace neofog {

class CleanModel
{
  public:
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("value", _value);
    }

  private:
    double _value = 0.0;
    const int _bound = 4; // const: cannot be assigned by a load
    double _memo = 0.0; // neofog-lint: allow(snapshot): recomputed on first use after resume
};

struct WalkedReport
{
    unsigned long packages = 0;
    unsigned long wakeups = 0;

    // Registry-walked: archives whatever the MetricRegistry declares,
    // so member coverage is R6's job, not R5's.
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        for (const auto &def : metrics().metrics())
            def.save(ar, *this);
    }
};

} // namespace neofog

#endif // NEOFOG_HW_R5_SNAPSHOT_OK_HH
