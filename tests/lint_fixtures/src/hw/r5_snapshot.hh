// R5 fixture: the seeded mutation.  _driftScratch is a freshly added
// member that nobody serialized and nobody justified — the
// snapshot-coverage pass must name it (file, line, member) instead of
// leaving the failure to a bare sizeof pin.
#ifndef NEOFOG_HW_R5_SNAPSHOT_HH
#define NEOFOG_HW_R5_SNAPSHOT_HH

namespace neofog {

class DriftModel
{
  public:
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("accumulated", _accumulated);
        ar.io("steps", _steps);
    }

  private:
    double _accumulated = 0.0;
    unsigned long _steps = 0;
    double _driftScratch = 0.0; // line 24: the unserialized member
};

} // namespace neofog

#endif // NEOFOG_HW_R5_SNAPSHOT_HH
