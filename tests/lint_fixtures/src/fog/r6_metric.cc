// R6 fixture: MiniReport is registry-backed (a concrete
// MetricRegistry<MiniReport> exists below) but its `stranded` member
// never appears as a &MiniReport::member MetricDef — the
// metric-coverage pass must flag it by name.
#include "fog/r6_metric.hh"

namespace neofog {

struct MiniReport
{
    unsigned long sent = 0;
    unsigned long lost = 0;
    unsigned long stranded = 0; // line 13: missing from the registry
};

namespace {

using R = MiniReport;

const MetricRegistry<MiniReport> &
miniMetrics()
{
    static const MetricRegistry<MiniReport> reg{{
        {"sent", "packages sent", &R::sent},
        {"lost", "packages lost", &R::lost},
    }};
    return reg;
}

} // namespace

} // namespace neofog
