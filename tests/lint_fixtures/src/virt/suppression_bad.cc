// Fixture: malformed and unused trailers.  A suppression without a
// justification must itself be flagged, and so must one that
// suppresses nothing.  Logical path src/virt/r6_bad_suppression.cc
// (never compiled).
#include "sim/rng.hh"

namespace neofog {

double
sloppySuppressions()
{
    Rng r(7); // neofog-lint: allow(determinism)
    double x = r.uniform(); // neofog-lint: allow(observability): nothing here writes to a stream
    return x;
}

} // namespace neofog
