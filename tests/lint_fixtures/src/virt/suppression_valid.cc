// Fixture: a real R1 hit carrying a well-formed allow() trailer with
// a justification — the linter must accept the file (exit 0) and
// count exactly one suppression.  Logical path
// src/virt/r5_suppressed.cc (never compiled).
#include "sim/rng.hh"

namespace neofog {

double
replayNoise()
{
    Rng replay(0x5EEDULL); // neofog-lint: allow(determinism): fixture exercising the suppression path with a fixed literal seed
    return replay.uniform();
}

} // namespace neofog
