/**
 * @file
 * Distributed-sharding tests (`ctest -L dist`): wire framing and
 * corruption rejection, the HELLO handshake guard, partitioner
 * properties, worker-count clamping, the rotation-digest barrier
 * check, in-process partition windows merging to the full run, and
 * the tentpole contract — runDistributed() bit-identical (registry
 * operator==) to FogSystem::run() for any worker count, composed
 * with threads, and across a checkpoint/resume cycle.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dist/coordinator.hh"
#include "dist/partition.hh"
#include "dist/wire.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"
#include "fog/scenario.hh"
#include "fog/snapshot_io.hh"
#include "fog/system_report.hh"
#include "sim/logging.hh"
#include "sim/thread_pool.hh"
#include "snapshot/archive.hh"

namespace neofog {
namespace {

namespace fs = std::filesystem;
using dist::ChainRange;
using dist::Frame;
using dist::MsgType;
using dist::WireClosed;
using dist::WireConn;

/** Self-deleting scratch directory for checkpoint tests. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : _path(fs::temp_directory_path() / ("neofog_dist_test_" + tag))
    {
        fs::remove_all(_path);
        fs::create_directories(_path);
    }
    ~ScratchDir() { fs::remove_all(_path); }

    std::string path() const { return _path.string(); }

  private:
    fs::path _path;
};

/** The shrunk fig-13 scenario the resume suite also runs. */
ScenarioConfig
distScenario(unsigned threads = 1)
{
    ScenarioConfig cfg = presets::fig13(presets::fiosNeofog(), 3);
    cfg.chains = 3;
    cfg.horizon = kHour;
    cfg.seed = 77;
    cfg.threads = threads;
    return cfg;
}

void
expectFatalContaining(const std::function<void()> &fn,
                      const std::string &needle)
{
    try {
        fn();
        FAIL() << "expected FatalError containing '" << needle << "'";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find(needle),
                  std::string::npos)
            << err.what();
    }
}

// ---------------------------------------------------------------------
// Wire framing
// ---------------------------------------------------------------------

TEST(Wire, FrameRoundTrip)
{
    const std::string payload = "alpha\0beta and some bytes";
    const std::string bytes =
        dist::encodeFrame(MsgType::Shard, payload);
    EXPECT_EQ(bytes.size(), dist::kFrameHeaderBytes + payload.size());

    std::size_t consumed = 0;
    const Frame frame = dist::decodeFrame(bytes, consumed);
    EXPECT_EQ(frame.type, MsgType::Shard);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(consumed, bytes.size());

    // An empty payload is a legal frame (STEP acks, SHUTDOWN, ...).
    const std::string empty = dist::encodeFrame(MsgType::Shutdown, {});
    EXPECT_EQ(empty.size(), dist::kFrameHeaderBytes);
    const Frame bare = dist::decodeFrame(empty, consumed);
    EXPECT_EQ(bare.type, MsgType::Shutdown);
    EXPECT_TRUE(bare.payload.empty());
}

TEST(Wire, FrameRejectsCorruptionLoudly)
{
    const std::string good = dist::encodeFrame(MsgType::Step, "payload");
    std::size_t consumed = 0;

    // Header truncation.
    expectFatalContaining(
        [&] { dist::decodeFrame(good.substr(0, 5), consumed); },
        "truncated");
    // Payload truncation.
    expectFatalContaining(
        [&] {
            dist::decodeFrame(good.substr(0, good.size() - 2), consumed);
        },
        "truncated");
    // Unknown message type tag.
    std::string bad = good;
    bad[4] = 99;
    expectFatalContaining([&] { dist::decodeFrame(bad, consumed); },
                          "unknown message type");
    // Oversize claimed length.
    bad = good;
    bad[3] = '\x7f'; // length u32 high byte -> ~2 GiB
    expectFatalContaining([&] { dist::decodeFrame(bad, consumed); },
                          "cap");
    // Flipped payload byte: checksum mismatch, caught before decode.
    bad = good;
    bad[bad.size() - 1] ^= 0x01;
    expectFatalContaining([&] { dist::decodeFrame(bad, consumed); },
                          "checksum");
    // Oversize payloads are refused at encode time too.
    expectFatalContaining(
        [&] {
            dist::encodeFrame(
                MsgType::Shard,
                std::string(dist::kMaxPayloadBytes + 1, 'x'));
        },
        "cap");
}

TEST(Wire, ConnRoundTripAndPeerDeathOverSocketpair)
{
    int fds[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    WireConn a(fds[0]);
    {
        WireConn b(fds[1]);

        dist::StepOkMsg sent;
        sent.slot = 1234;
        sent.rotationDigest = 0xDEADBEEFCAFEF00DULL;
        a.send(MsgType::StepOk, dist::encodeMsg(sent));

        const Frame frame = b.expect(MsgType::StepOk);
        const auto got = dist::decodeMsg<dist::StepOkMsg>(frame.payload);
        EXPECT_EQ(got.slot, sent.slot);
        EXPECT_EQ(got.rotationDigest, sent.rotationDigest);

        // A type other than the expected one is a protocol desync.
        b.send(MsgType::Bye);
        expectFatalContaining([&] { a.expect(MsgType::StepOk); },
                              "desync");
        // ~WireConn closes b's end here.
    }
    // The peer is gone: recv reports WireClosed, never a short frame.
    EXPECT_THROW(a.recv(), WireClosed);
}

TEST(Wire, MessageCodecRejectsTrailingBytes)
{
    dist::AssignMsg assign;
    assign.chainLo = 2;
    assign.chainHi = 5;
    assign.resume = true;
    assign.snapshotDir = "/tmp/somewhere";

    const std::string blob = dist::encodeMsg(assign);
    const auto back = dist::decodeMsg<dist::AssignMsg>(blob);
    EXPECT_EQ(back.chainLo, 2u);
    EXPECT_EQ(back.chainHi, 5u);
    EXPECT_TRUE(back.resume);
    EXPECT_EQ(back.snapshotDir, assign.snapshotDir);

    // A concatenation of two messages must not decode as one.
    expectFatalContaining(
        [&] { dist::decodeMsg<dist::AssignMsg>(blob + blob); },
        "trailing");
}

TEST(Wire, CheckHelloRejectsEveryMismatch)
{
    dist::HelloMsg hello;
    hello.worker = 3;
    hello.fingerprint = 42;
    dist::checkHello(hello, 42, 3); // matching: no throw

    dist::HelloMsg skewed = hello;
    skewed.schema = "neofog-wire-v0";
    expectFatalContaining([&] { dist::checkHello(skewed, 42, 3); },
                          "schema");
    expectFatalContaining([&] { dist::checkHello(hello, 42, 2); },
                          "introduced itself");
    expectFatalContaining([&] { dist::checkHello(hello, 43, 3); },
                          "fingerprint");
}

// ---------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------

TEST(Partition, RangesCoverDisjointlyAndBalance)
{
    for (const std::size_t chains : {1u, 3u, 7u, 64u, 100u}) {
        for (const std::size_t workers : {1u, 2u, 3u, 5u, 64u}) {
            const auto ranges = dist::partitionChains(chains, workers);
            ASSERT_EQ(ranges.size(), workers);
            // Contiguous, in order, covering [0, chains) exactly.
            EXPECT_EQ(ranges.front().lo, 0u);
            EXPECT_EQ(ranges.back().hi, chains);
            std::size_t lo = 0, hi = 0;
            for (const ChainRange &r : ranges) {
                EXPECT_EQ(r.lo, hi);
                EXPECT_LE(r.lo, r.hi);
                lo = std::min(lo, r.lo);
                hi = r.hi;
                // Balanced: sizes differ by at most one.
                EXPECT_LE(r.size(), chains / workers + 1);
            }
        }
    }
    EXPECT_THROW(dist::partitionChains(4, 0), FatalError);

    const auto ranges = dist::partitionChains(4, 2);
    EXPECT_TRUE(ranges[0].contains(1));
    EXPECT_FALSE(ranges[0].contains(2));
    EXPECT_TRUE(ranges[1].contains(2));
}

TEST(Partition, ClampWorkersMirrorsThreadPoolPolicy)
{
    const auto hw =
        static_cast<std::size_t>(ThreadPool::hardwareThreads());
    const std::size_t cap = std::max<std::size_t>(256, 2 * hw);

    // 0 = one worker per hardware thread (further capped at chains).
    EXPECT_EQ(dist::clampWorkers(0, 100000), hw);
    EXPECT_EQ(dist::clampWorkers(0, 1), 1u);
    // Negative warns and runs one worker.
    EXPECT_EQ(dist::clampWorkers(-5, 8), 1u);
    // Absurd requests clamp to max(256, 2 x hardware threads).
    EXPECT_EQ(dist::clampWorkers(1LL << 40, 1000000), cap);
    // More workers than chains buys nothing but fork overhead.
    EXPECT_EQ(dist::clampWorkers(8, 3), 3u);
    EXPECT_EQ(dist::clampWorkers(2, 3), 2u);
    // Zero chains still yields one worker (the fatal lives elsewhere).
    EXPECT_EQ(dist::clampWorkers(4, 0), 4u);
}

TEST(Partition, WorkerSnapshotDirLayout)
{
    EXPECT_EQ(dist::workerSnapshotDir("snaps", 0), "snaps/worker0");
    EXPECT_EQ(dist::workerSnapshotDir("/a/b", 12), "/a/b/worker12");
}

// ---------------------------------------------------------------------
// Rotation digest: the inter-chain NVD4Q state the wire cross-checks
// ---------------------------------------------------------------------

TEST(Partition, RotationDigestMatchesEngineState)
{
    // fig-13 leaves membershipUpdateInterval at 0; set it explicitly
    // so clone groups actually rotate (mux 3 > 1).
    ScenarioConfig cfg = distScenario();
    cfg.membershipUpdateInterval = 5 * cfg.slotInterval;

    const dist::ChainRange full{0, cfg.chains};
    FogSystem sys(cfg, 0, cfg.chains);
    EXPECT_EQ(sys.rotationDigest(),
              dist::expectedRotationDigest(cfg, full, 0));

    // Walk a barrier grid and cross-check at every stop, exactly as
    // the coordinator does: after slots [0, s) the digest is a pure
    // function of s and the scenario.
    std::int64_t at = 0;
    for (const std::int64_t barrier : {1, 5, 6, 40, 123, 300}) {
        sys.runWindow(at, barrier);
        at = barrier;
        EXPECT_EQ(sys.rotationDigest(),
                  dist::expectedRotationDigest(cfg, full, barrier))
            << "barrier " << barrier;
    }

    // A partition's digest covers exactly its chain slice.
    FogSystem part(cfg, 1, 3);
    part.runWindow(0, 40);
    EXPECT_EQ(part.rotationDigest(),
              dist::expectedRotationDigest(cfg, {1, 3}, 40));
    EXPECT_NE(part.rotationDigest(),
              dist::expectedRotationDigest(cfg, {0, 2}, 40));

    // Without a membership interval nothing rotates, and the digest
    // reduces to the chain-range fingerprint.
    ScenarioConfig still = distScenario();
    FogSystem frozen(still, 0, still.chains);
    frozen.runWindow(0, 100);
    EXPECT_EQ(frozen.rotationDigest(),
              dist::expectedRotationDigest(still, full, 100));
    EXPECT_EQ(dist::expectedRotationDigest(still, full, 100),
              dist::expectedRotationDigest(still, full, 0));
}

// ---------------------------------------------------------------------
// Partition windows merge to the full run (in-process, no fork)
// ---------------------------------------------------------------------

TEST(Partition, WindowedPartitionsMergeToFullRun)
{
    const ScenarioConfig cfg = distScenario();
    const SystemReport reference = FogSystem(cfg).run();
    const std::int64_t slots = cfg.slotCount();

    // Two partitions, stepped on an uneven barrier grid, shards
    // decoded from the wire blobs and merged in global chain order.
    FogSystem left(cfg, 0, 2);
    FogSystem right(cfg, 2, 3);
    std::int64_t at = 0;
    const std::vector<std::int64_t> barriers = {7, 100, 101, slots};
    for (const std::int64_t barrier : barriers) {
        left.runWindow(at, barrier);
        right.runWindow(at, barrier);
        at = barrier;
    }
    left.finalizeShards();
    right.finalizeShards();

    SystemReport merged;
    merged.idealPackages = cfg.idealPackages();
    for (FogSystem *part : {&left, &right}) {
        for (std::size_t i = 0; i < part->chainHi() - part->chainLo();
             ++i) {
            SystemReport shard;
            const std::string blob = part->shardBlob(i);
            snapshot::InArchive ar{std::string_view(blob)};
            ar.pushScope("shard");
            shard.serialize(ar);
            ar.popScope();
            EXPECT_TRUE(ar.atEnd());
            merged.merge(shard);
        }
    }
    EXPECT_EQ(merged, reference);
}

TEST(Partition, PartitionCtorRejectsBadRanges)
{
    const ScenarioConfig cfg = distScenario();
    EXPECT_THROW(FogSystem(cfg, 2, 2), FatalError); // empty
    EXPECT_THROW(FogSystem(cfg, 2, 1), FatalError); // inverted
    EXPECT_THROW(FogSystem(cfg, 0, 4), FatalError); // past the end
}

// ---------------------------------------------------------------------
// The tentpole: distributed == single-process, bit for bit
// ---------------------------------------------------------------------

TEST(Distributed, AnyWorkerCountMatchesSingleProcess)
{
    const ScenarioConfig cfg = distScenario();
    const SystemReport reference = FogSystem(cfg).run();

    for (const long long workers : {1LL, 2LL, 3LL}) {
        dist::DistOptions opt;
        opt.workersRequested = workers;
        const dist::DistResult res = dist::runDistributed(cfg, opt);
        EXPECT_EQ(res.workers, static_cast<std::size_t>(workers));
        EXPECT_EQ(res.respawns, 0u);
        EXPECT_EQ(res.report, reference) << "workers " << workers;
    }

    // Requests beyond the chain count clamp without changing results.
    dist::DistOptions opt;
    opt.workersRequested = 64;
    const dist::DistResult res = dist::runDistributed(cfg, opt);
    EXPECT_EQ(res.workers, 3u);
    EXPECT_EQ(res.report, reference);
}

TEST(Distributed, WorkersComposeWithThreads)
{
    const SystemReport reference = FogSystem(distScenario()).run();

    // Each worker runs its partition under its own thread pool; the
    // combination must not perturb a single report bit.
    dist::DistOptions opt;
    opt.workersRequested = 2;
    const dist::DistResult res =
        dist::runDistributed(distScenario(2), opt);
    EXPECT_EQ(res.report, reference);
}

TEST(Distributed, CheckpointedRunResumesBitIdentically)
{
    const ScratchDir dir("resume");
    const ScenarioConfig cfg = distScenario();
    const SystemReport reference = FogSystem(cfg).run();

    // A checkpointing distributed run: barriers every 70 slots.
    dist::DistOptions opt;
    opt.workersRequested = 2;
    opt.snapshotEvery = 70;
    opt.snapshotDir = dir.path();
    EXPECT_EQ(dist::runDistributed(cfg, opt).report, reference);
    EXPECT_TRUE(fs::is_directory(dir.path() + "/worker0"));
    EXPECT_TRUE(fs::is_directory(dir.path() + "/worker1"));

    // Resume from the partitioned directory: the scenario comes from
    // worker 0's snapshot, the worker count from the layout.
    dist::DistOptions again;
    again.workersRequested = 0; // rediscover
    again.snapshotDir = dir.path();
    const dist::DistResult resumed =
        dist::resumeDistributed(distScenario(), again);
    EXPECT_EQ(resumed.workers, 2u);
    EXPECT_EQ(resumed.report, reference);

    // A mismatched worker count is refused, not silently repartitioned
    // (each worker's snapshot covers exactly its own chain slice).
    dist::DistOptions wrong;
    wrong.workersRequested = 3;
    wrong.snapshotDir = dir.path();
    expectFatalContaining(
        [&] { dist::resumeDistributed(distScenario(), wrong); },
        "worker partitions");
}

TEST(Distributed, RejectsBadOptions)
{
    const ScenarioConfig cfg = distScenario();
    dist::DistOptions opt;
    opt.snapshotEvery = -1;
    EXPECT_THROW(dist::runDistributed(cfg, opt), FatalError);

    opt.snapshotEvery = 0;
    opt.snapshotDir.clear();
    EXPECT_THROW(dist::runDistributed(cfg, opt), FatalError);

    ScenarioConfig chainless = cfg;
    chainless.chains = 0;
    EXPECT_THROW(dist::runDistributed(chainless, dist::DistOptions{}),
                 FatalError);

    // Resuming from a directory that was never checkpointed into.
    const ScratchDir empty("no_snapshots");
    dist::DistOptions resume;
    resume.snapshotDir = empty.path();
    EXPECT_THROW(dist::resumeDistributed(cfg, resume), FatalError);
}

} // namespace
} // namespace neofog
