/**
 * @file
 * Tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hh"

namespace neofog {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-3.0, 5.0);
        EXPECT_GE(v, -3.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(17);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        saw_lo |= (v == 2);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments)
{
    Rng rng(19);
    const int n = 200000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sum2 += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, NormalScaled)
{
    Rng rng(23);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(29);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(2.0);
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialNonNegative)
{
    Rng rng(31);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.exponential(0.1), 0.0);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(37);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng rng(41);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ForkIndependence)
{
    Rng parent(43);
    Rng child1 = parent.fork();
    Rng child2 = parent.fork();
    // Children differ from each other and from the parent stream.
    int same12 = 0;
    for (int i = 0; i < 100; ++i) {
        if (child1.next() == child2.next())
            ++same12;
    }
    EXPECT_EQ(same12, 0);
}

TEST(Rng, ForkDeterministic)
{
    Rng p1(99), p2(99);
    Rng c1 = p1.fork();
    Rng c2 = p2.fork();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(c1.next(), c2.next());
}

} // namespace
} // namespace neofog
