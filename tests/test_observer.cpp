/**
 * @file
 * Tests for the NodeObserver phase-reporting hook.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "energy/power_trace.hh"
#include "fog/presets.hh"
#include "node/node.hh"

namespace neofog {
namespace {

using namespace neofog::literals;

struct RecordingObserver : NodeObserver
{
    struct Event
    {
        std::uint32_t node;
        Phase phase;
        Tick start;
        Tick duration;
        Energy energy;
    };
    std::vector<Event> events;

    void
    onPhase(std::uint32_t node_id, Phase phase, Tick start,
            Tick duration, Energy energy) override
    {
        events.push_back({node_id, phase, start, duration, energy});
    }
};

std::unique_ptr<Node>
makeNode(RecordingObserver *obs)
{
    Node::Config cfg = presets::systemNodeTemplate();
    cfg.id = 42;
    auto node = std::make_unique<Node>(
        cfg, std::make_unique<ConstantTrace>(8.0_mW), Rng(1));
    node->setObserver(obs);
    return node;
}

TEST(Observer, PhasesArriveInExecutionOrder)
{
    RecordingObserver obs;
    auto node = makeNode(&obs);
    node->beginSlot(0, 12 * kSec);
    ASSERT_TRUE(node->tryWake());
    ASSERT_TRUE(node->samplePackage());
    ASSERT_GT(node->executeTasks(1), 0);
    ASSERT_TRUE(node->payTransmit(16));

    ASSERT_GE(obs.events.size(), 4u);
    EXPECT_EQ(obs.events[0].phase, NodeObserver::Phase::Wake);
    EXPECT_EQ(obs.events[1].phase, NodeObserver::Phase::Sample);
    EXPECT_EQ(obs.events[2].phase, NodeObserver::Phase::Compute);
    EXPECT_EQ(obs.events[3].phase, NodeObserver::Phase::Transmit);

    // Phases are contiguous: each starts where the previous ended.
    for (std::size_t i = 1; i < obs.events.size(); ++i) {
        EXPECT_EQ(obs.events[i].start,
                  obs.events[i - 1].start + obs.events[i - 1].duration);
    }
    for (const auto &e : obs.events) {
        EXPECT_EQ(e.node, 42u);
        EXPECT_GT(e.energy.joules(), 0.0);
    }
}

TEST(Observer, DetachStopsReporting)
{
    RecordingObserver obs;
    auto node = makeNode(&obs);
    node->beginSlot(0, 12 * kSec);
    ASSERT_TRUE(node->tryWake());
    const std::size_t before = obs.events.size();
    node->setObserver(nullptr);
    node->samplePackage();
    EXPECT_EQ(obs.events.size(), before);
}

TEST(Observer, PhaseNamesComplete)
{
    for (auto p : {NodeObserver::Phase::Wake,
                   NodeObserver::Phase::Sample,
                   NodeObserver::Phase::Compute,
                   NodeObserver::Phase::IncidentalCompute,
                   NodeObserver::Phase::Transmit,
                   NodeObserver::Phase::Receive,
                   NodeObserver::Phase::Control})
        EXPECT_NE(phaseName(p), "?");
}

TEST(Observer, ControlAndReceivePhasesReported)
{
    RecordingObserver obs;
    auto node = makeNode(&obs);
    node->beginSlot(0, 12 * kSec);
    ASSERT_TRUE(node->tryWake());
    ASSERT_TRUE(node->payControlMessage(4));
    ASSERT_TRUE(node->payReceive(16));
    EXPECT_EQ(obs.events.back().phase, NodeObserver::Phase::Receive);
    EXPECT_EQ(obs.events[obs.events.size() - 2].phase,
              NodeObserver::Phase::Control);
}

} // namespace
} // namespace neofog
