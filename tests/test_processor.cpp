/**
 * @file
 * Tests for processor models and the Spendthrift policy.
 */

#include <gtest/gtest.h>

#include "hw/processor.hh"
#include "sim/logging.hh"

namespace neofog {
namespace {

using namespace neofog::literals;

TEST(Processor, InstructionEnergyMatchesTable2)
{
    // 0.209 mW 8051 @ 1 MHz, 12 clocks/instruction => 2.508 nJ/inst.
    NvProcessor nvp;
    EXPECT_NEAR(nvp.instructionEnergy().nanojoules(), 2.508, 1e-6);
    // Bridge health: 545 instructions -> 1366.86 nJ (Table 2).
    EXPECT_NEAR(nvp.computeEnergy(545).nanojoules(), 1366.86, 0.01);
    // Pattern matching: 1670 -> 4188.36 nJ.
    EXPECT_NEAR(nvp.computeEnergy(1670).nanojoules(), 4188.36, 0.01);
}

TEST(Processor, ComputeTimeAtOneMegahertz)
{
    NvProcessor nvp;
    // 12 cycles per instruction at 1 MHz = 12 us per instruction.
    EXPECT_EQ(nvp.computeTime(1), 12);
    EXPECT_EQ(nvp.computeTime(1000), 12000);
}

TEST(Processor, EnergyPerInstructionIndependentOfClock)
{
    NvProcessor::NvpConfig cfg;
    cfg.base.frequencyHz = 50e6;
    cfg.base.activePower = Power::fromMilliwatts(0.209 * 50.0);
    NvProcessor fast(cfg);
    EXPECT_NEAR(fast.instructionEnergy().nanojoules(), 2.508, 0.01);
    // But 50x faster.
    NvProcessor slow;
    EXPECT_NEAR(static_cast<double>(slow.computeTime(100000)) /
                    static_cast<double>(fast.computeTime(100000)),
                50.0, 0.5);
}

TEST(Processor, WakeLatenciesMatchPaper)
{
    VolatileProcessor vp;
    NvProcessor nos_nvp;
    NvProcessor fios_nvp{NvProcessor::fiosConfig()};
    EXPECT_EQ(vp.wakeLatency(), 300 * kUs);
    EXPECT_EQ(nos_nvp.wakeLatency(), 32 * kUs);
    EXPECT_EQ(fios_nvp.wakeLatency(), 7 * kUs);
}

TEST(Processor, VpWakeIncludesFlashReload)
{
    VolatileProcessor vp;
    NvProcessor nvp;
    // The VP reloads configuration from flash: orders of magnitude
    // more wake energy than an NVP restore.
    EXPECT_GT(vp.wakeEnergy().joules(), 100.0 * nvp.wakeEnergy().joules());
}

TEST(Processor, NonvolatilityFlags)
{
    VolatileProcessor vp;
    NvProcessor nvp;
    EXPECT_FALSE(vp.isNonvolatile());
    EXPECT_TRUE(nvp.isNonvolatile());
    EXPECT_EQ(vp.backupLatency(), 0);
    EXPECT_GT(nvp.backupLatency(), 0);
    EXPECT_GT(nvp.backupEnergy().joules(), 0.0);
}

TEST(Processor, RejectsBadConfig)
{
    Processor::Config bad;
    bad.frequencyHz = 0.0;
    VolatileProcessor::VpConfig cfg;
    cfg.base = bad;
    EXPECT_THROW(VolatileProcessor{cfg}, FatalError);
}

TEST(Spendthrift, BenefitMonotonicInIncome)
{
    SpendthriftPolicy policy;
    double prev = 1e9;
    for (double mw = 0.1; mw <= 15.0; mw += 0.5) {
        const double b = policy.benefit(Power::fromMilliwatts(mw));
        EXPECT_LE(b, prev + 1e-12);
        prev = b;
    }
}

TEST(Spendthrift, CornerValues)
{
    SpendthriftPolicy::Config cfg;
    cfg.lowIncome = 1.0_mW;
    cfg.highIncome = 10.0_mW;
    cfg.maxBenefit = 2.0;
    cfg.minBenefit = 1.0;
    SpendthriftPolicy policy(cfg);
    EXPECT_DOUBLE_EQ(policy.benefit(0.5_mW), 2.0);
    EXPECT_DOUBLE_EQ(policy.benefit(10.0_mW), 1.0);
    EXPECT_DOUBLE_EQ(policy.benefit(100.0_mW), 1.0);
    EXPECT_NEAR(policy.benefit(5.5_mW), 1.5, 1e-12);
}

TEST(Spendthrift, FrequencyScaleBounds)
{
    SpendthriftPolicy policy;
    const double lo = policy.frequencyScale(Power::fromMicrowatts(1.0));
    const double hi = policy.frequencyScale(Power::fromMilliwatts(50.0));
    EXPECT_NEAR(lo, 0.25, 1e-12);
    EXPECT_NEAR(hi, 1.0, 1e-12);
    EXPECT_LT(policy.frequencyScale(2.0_mW), 1.0);
}

TEST(Spendthrift, EffectiveComputeEnergyScales)
{
    NvProcessor nvp;
    const Energy nominal = nvp.computeEnergy(100000);
    const Energy at_low =
        nvp.effectiveComputeEnergy(100000, Power::fromMicrowatts(100.0));
    const Energy at_high =
        nvp.effectiveComputeEnergy(100000, 50.0_mW);
    EXPECT_LT(at_low, nominal);
    EXPECT_NEAR(at_high.joules(), nominal.joules(), 1e-15);
    EXPECT_NEAR(nominal.joules() / at_low.joules(),
                nvp.spendthrift().config().maxBenefit, 1e-9);
}

TEST(Spendthrift, RejectsBadConfig)
{
    SpendthriftPolicy::Config cfg;
    cfg.lowIncome = 10.0_mW;
    cfg.highIncome = 1.0_mW;
    EXPECT_THROW(SpendthriftPolicy{cfg}, FatalError);

    SpendthriftPolicy::Config cfg2;
    cfg2.minBenefit = 0.5;
    EXPECT_THROW(SpendthriftPolicy{cfg2}, FatalError);
}

} // namespace
} // namespace neofog
