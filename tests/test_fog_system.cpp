/**
 * @file
 * Integration tests: full FogSystem runs across modes, balancers,
 * power regimes, and multiplexing.
 */

#include <gtest/gtest.h>

#include "fog/experiment.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"
#include "sim/logging.hh"

namespace neofog {
namespace {

ScenarioConfig
smallScenario(OperatingMode mode, const std::string &policy)
{
    ScenarioConfig cfg;
    cfg.nodesPerChain = 10;
    cfg.chains = 1;
    cfg.horizon = kHour;
    cfg.slotInterval = 12 * kSec;
    cfg.traceKind = TraceKind::ForestIndependent;
    cfg.meanIncome = Power::fromMilliwatts(2.6);
    cfg.mode = mode;
    cfg.balancerPolicy = policy;
    cfg.nodeTemplate = presets::systemNodeTemplate();
    cfg.seed = 11;
    return cfg;
}

TEST(ScenarioConfig, SlotArithmetic)
{
    ScenarioConfig cfg;
    cfg.nodesPerChain = 10;
    cfg.chains = 1;
    cfg.horizon = 5 * kHour;
    cfg.slotInterval = 12 * kSec;
    EXPECT_EQ(cfg.slotCount(), 1500);
    EXPECT_EQ(cfg.idealPackages(), 15000u);
}

TEST(ScenarioConfig, TraceKindNames)
{
    EXPECT_EQ(traceKindName(TraceKind::ForestIndependent),
              "forest-independent");
    EXPECT_EQ(traceKindName(TraceKind::RainLow), "rain-low");
}

TEST(FogSystem, RejectsBadConfigs)
{
    ScenarioConfig cfg = smallScenario(OperatingMode::NosVp, "none");
    cfg.nodesPerChain = 0;
    EXPECT_THROW(FogSystem{cfg}, FatalError);

    ScenarioConfig cfg2 = smallScenario(OperatingMode::NosVp, "none");
    cfg2.multiplexing = 0;
    EXPECT_THROW(FogSystem{cfg2}, FatalError);

    ScenarioConfig cfg3 = smallScenario(OperatingMode::NosVp, "bogus");
    EXPECT_THROW(FogSystem{cfg3}, FatalError);
}

TEST(FogSystem, ReportInvariants)
{
    FogSystem sys(smallScenario(OperatingMode::FiosNvMote,
                                "distributed"));
    const SystemReport r = sys.run();
    EXPECT_EQ(r.idealPackages, 3000u);
    // Every slot either wakes or fails.
    EXPECT_EQ(r.wakeups + r.depletionFailures, 3000u);
    // Cannot process more than was sampled.
    EXPECT_LE(r.totalProcessed(), r.packagesSampled);
    EXPECT_LE(r.packagesSampled, r.idealPackages);
    EXPECT_GE(r.yield(), 0.0);
    EXPECT_LE(r.yield(), 1.0);
}

TEST(FogSystem, RunTwiceForbidden)
{
    FogSystem sys(smallScenario(OperatingMode::NosVp, "none"));
    sys.run();
    EXPECT_DEATH(sys.run(), "run called twice");
}

TEST(FogSystem, DeterministicForSeed)
{
    const auto cfg = smallScenario(OperatingMode::FiosNvMote,
                                   "distributed");
    FogSystem a(cfg), b(cfg);
    const SystemReport ra = a.run();
    const SystemReport rb = b.run();
    EXPECT_EQ(ra.totalProcessed(), rb.totalProcessed());
    EXPECT_EQ(ra.wakeups, rb.wakeups);
    EXPECT_EQ(ra.packagesInFog, rb.packagesInFog);
    EXPECT_EQ(ra.tasksBalancedAway, rb.tasksBalancedAway);
}

TEST(FogSystem, SeedChangesOutcome)
{
    auto cfg1 = smallScenario(OperatingMode::FiosNvMote, "none");
    auto cfg2 = cfg1;
    cfg2.seed = 999;
    FogSystem a(cfg1), b(cfg2);
    EXPECT_NE(a.run().totalProcessed(), b.run().totalProcessed());
}

TEST(FogSystem, VpProcessesOnlyToCloud)
{
    FogSystem sys(smallScenario(OperatingMode::NosVp, "none"));
    const SystemReport r = sys.run();
    EXPECT_EQ(r.packagesInFog, 0u);
    EXPECT_GT(r.packagesToCloud, 0u);
}

TEST(FogSystem, NvpModesProcessInFog)
{
    FogSystem sys(smallScenario(OperatingMode::NosNvp, "tree"));
    const SystemReport r = sys.run();
    EXPECT_GT(r.packagesInFog, 0u);
    // Fog dominates for NVP systems (paper: ~94%).
    EXPECT_GT(static_cast<double>(r.packagesInFog),
              0.6 * static_cast<double>(r.totalProcessed()));
}

TEST(FogSystem, SystemOrderingMatchesPaper)
{
    const SystemReport vp =
        FogSystem(smallScenario(OperatingMode::NosVp, "none")).run();
    const SystemReport nvp =
        FogSystem(smallScenario(OperatingMode::NosNvp, "tree")).run();
    const SystemReport neo =
        FogSystem(smallScenario(OperatingMode::FiosNvMote,
                                "distributed")).run();
    // NEOFog > NVP-baseline and NEOFog > VP (the one-hour horizon is
    // noisy, so only the strong orderings are asserted).
    EXPECT_GT(neo.totalProcessed(), nvp.totalProcessed());
    EXPECT_GT(neo.totalProcessed(), vp.totalProcessed());
    EXPECT_GT(static_cast<double>(neo.totalProcessed()),
              1.3 * static_cast<double>(vp.totalProcessed()));
}

TEST(FogSystem, DistributedBalancerMovesTasksUnderVariance)
{
    FogSystem sys(smallScenario(OperatingMode::FiosNvMote,
                                "distributed"));
    const SystemReport r = sys.run();
    EXPECT_GT(r.tasksBalancedAway, 0u);
    EXPECT_GT(r.lbMessages, 0u);
}

TEST(FogSystem, MultiplexingHelpsInLowPower)
{
    auto mk = [](int mux) {
        ScenarioConfig cfg =
            presets::fig13(presets::fiosNeofog(), mux);
        cfg.horizon = 2 * kHour;
        return cfg;
    };
    const SystemReport m1 = FogSystem(mk(1)).run();
    const SystemReport m3 = FogSystem(mk(3)).run();
    EXPECT_GT(static_cast<double>(m3.totalProcessed()),
              1.5 * static_cast<double>(m1.totalProcessed()));
}

TEST(FogSystem, MultiplexingNeutralInHighPower)
{
    auto mk = [](int mux) {
        ScenarioConfig cfg =
            presets::fig12(presets::fiosNeofog(), mux);
        cfg.horizon = 2 * kHour;
        return cfg;
    };
    // A single 2-hour seed is too noisy to pin the "roughly neutral"
    // property, so average a few seeds (the paper itself averages
    // five power profiles per figure).
    const RunOptions opts{.runs = 5, .baseSeed = 500,
                          .seedThreads = 4};
    const AggregateReport m1 =
        ExperimentRunner::runSeeds(mk(1), opts);
    const AggregateReport m3 =
        ExperimentRunner::runSeeds(mk(3), opts);
    const double gain = m3.stat("total_processed").mean() /
                        m1.stat("total_processed").mean();
    EXPECT_LT(gain, 1.35);
}

TEST(FogSystem, MultiplexedSystemHasCorrectNodeCount)
{
    ScenarioConfig cfg = smallScenario(OperatingMode::FiosNvMote,
                                       "distributed");
    cfg.multiplexing = 3;
    FogSystem sys(cfg);
    EXPECT_EQ(sys.physicalPerChain(), 30u);
    sys.run();
    // Physical wakeups are spread across clones: total logical slots
    // still bounded by ideal.
    std::uint64_t wakeups = 0;
    for (std::size_t i = 0; i < 30; ++i)
        wakeups += sys.node(0, i).stats().wakeups.value();
    EXPECT_LE(wakeups, cfg.idealPackages());
}

TEST(FogSystem, MultipleChainsAggregate)
{
    ScenarioConfig cfg = smallScenario(OperatingMode::FiosNvMote,
                                       "distributed");
    cfg.chains = 3;
    FogSystem sys(cfg);
    const SystemReport r = sys.run();
    EXPECT_EQ(r.idealPackages, 9000u);
    EXPECT_GT(r.totalProcessed(), 0u);
}

TEST(FogSystem, DependentTracesLessBalancing)
{
    ScenarioConfig indep = smallScenario(OperatingMode::FiosNvMote,
                                         "distributed");
    ScenarioConfig dep = indep;
    dep.traceKind = TraceKind::BridgeDependent;
    const SystemReport ri = FogSystem(indep).run();
    const SystemReport rd = FogSystem(dep).run();
    // Dependent power -> less stored-energy variance -> the balancer
    // activates less (paper §5.2.2).
    EXPECT_LE(rd.tasksBalancedAway, ri.tasksBalancedAway);
}

TEST(FogSystem, EnergyAccountingSane)
{
    FogSystem sys(smallScenario(OperatingMode::FiosNvMote,
                                "distributed"));
    sys.run();
    for (std::size_t i = 0; i < 10; ++i) {
        const Node &n = sys.node(0, i);
        const NodeStats &st = n.stats();
        const double harvested = st.harvestedTotal.millijoules();
        const double spent =
            st.spentCompute.millijoules() + st.spentTx.millijoules() +
            st.spentRx.millijoules() + st.spentSample.millijoules() +
            st.spentWake.millijoules();
        // A node cannot spend more (at load) than it harvested
        // (ambient) plus its initial charge.
        EXPECT_LE(spent, harvested + 60.0 + 1e-6);
        EXPECT_GE(harvested, 0.0);
    }
}

TEST(FogSystem, StoredEnergySeriesRecorded)
{
    FogSystem sys(smallScenario(OperatingMode::NosNvp, "tree"));
    sys.run();
    const auto &series = sys.node(0, 3).stats().storedEnergyMj;
    EXPECT_GT(series.size(), 100u);
    for (const auto &pt : series.points()) {
        EXPECT_GE(pt.value, 0.0);
        EXPECT_LE(pt.value, 250.0 + 1e-9);
    }
}

} // namespace
} // namespace neofog
