/**
 * @file
 * Property tests for the SoA chain shards and the batched slot
 * kernel: stepping a slot through ChainEngine::beginSlotBatch must be
 * bit-identical to the per-node beginSlot path on the fig-13 preset
 * and on randomized scenarios, at every thread count; snapshots taken
 * on the SoA layout must round-trip onto the same bits; and
 * IntermittentExecution::runBatch must reproduce per-trace run()
 * exactly.  Registered under the "perf" ctest label next to the
 * energy-cache equivalence suite — these are the correctness
 * guardrails of the fleet-scale optimizations.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <random>
#include <vector>

#include "energy/power_trace.hh"
#include "energy/trace_cache.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"
#include "hw/processor.hh"
#include "node/intermittent.hh"
#include "sim/logging.hh"
#include "snapshot/snapshot.hh"

namespace neofog {
namespace {

namespace fs = std::filesystem;

/** Self-deleting scratch directory (mirrors test_snapshot's). */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : _path(fs::temp_directory_path() / ("neofog_soa_test_" + tag))
    {
        fs::remove_all(_path);
        fs::create_directories(_path);
    }
    ~ScratchDir() { fs::remove_all(_path); }

    std::string file(const std::string &name) const
    {
        return (_path / name).string();
    }
    std::string path() const { return _path.string(); }

  private:
    fs::path _path;
};

SystemReport
runWith(ScenarioConfig cfg, bool batch_kernel, unsigned threads)
{
    cfg.batchSlotKernel = batch_kernel;
    cfg.threads = threads;
    return FogSystem(cfg).run();
}

// The fig-13 preset is the shape the kernel hoists hardest (every
// node a scaled view of one shared rain stream): batched and
// per-node slot stepping must agree on every report bit at every
// thread count.
TEST(BatchKernel, Fig13BitIdenticalToPerNodePath)
{
    ScenarioConfig cfg = presets::fig13(presets::fiosNeofog(), 3);
    cfg.chains = 4;
    cfg.horizon = kHour;
    cfg.seed = 99;

    const SystemReport scalar = runWith(cfg, false, 1);
    for (const unsigned threads : {1u, 2u, 4u}) {
        EXPECT_EQ(runWith(cfg, true, threads), scalar)
            << "batched kernel diverged at threads=" << threads;
    }
}

// Constant traces take the other hoist arm (one pure integral shared
// by every node).
TEST(BatchKernel, ConstantTraceBitIdenticalToPerNodePath)
{
    ScenarioConfig cfg;
    cfg.chains = 3;
    cfg.nodesPerChain = 8;
    cfg.mode = OperatingMode::FiosNvMote;
    cfg.traceKind = TraceKind::Constant;
    cfg.meanIncome = Power::fromMilliwatts(2.2);
    cfg.balancerPolicy = "distributed";
    cfg.horizon = kHour;
    cfg.seed = 5;

    const SystemReport scalar = runWith(cfg, false, 1);
    for (const unsigned threads : {1u, 2u, 4u}) {
        EXPECT_EQ(runWith(cfg, true, threads), scalar)
            << "batched kernel diverged at threads=" << threads;
    }
}

// Randomized scenario sweep: whatever the trace family, mode,
// balancer, multiplexing, and relay/real-time knobs, enabling the
// batched kernel must never move a single bit (trace shapes with no
// hoistable structure must fall back transparently).
TEST(BatchKernel, RandomScenariosBitIdentical)
{
    std::minstd_rand pick(20260808);
    const TraceKind kinds[] = {TraceKind::ForestIndependent,
                               TraceKind::BridgeDependent,
                               TraceKind::RainLow, TraceKind::Constant};
    const OperatingMode modes[] = {OperatingMode::NosVp,
                                   OperatingMode::NosNvp,
                                   OperatingMode::FiosNvMote};
    const char *balancers[] = {"none", "tree", "distributed",
                               "cluster"};

    for (int round = 0; round < 6; ++round) {
        ScenarioConfig cfg;
        cfg.traceKind = kinds[pick() % 4];
        cfg.mode = modes[pick() % 3];
        cfg.balancerPolicy = balancers[pick() % 4];
        cfg.chains = 1 + pick() % 3;
        cfg.nodesPerChain = 4 + pick() % 7;
        cfg.multiplexing = 1 + pick() % 3;
        cfg.hopByHopRelay = pick() % 2 == 0;
        cfg.realTimeRequestChance = pick() % 2 == 0 ? 0.0 : 0.01;
        cfg.membershipUpdateInterval =
            pick() % 2 == 0 ? 0 : 10 * kMin;
        cfg.horizon = (20 + static_cast<Tick>(pick() % 20)) * kMin;
        cfg.seed = 1 + pick() % 1000;

        const SystemReport scalar = runWith(cfg, false, 1);
        for (const unsigned threads : {1u, 4u}) {
            EXPECT_EQ(runWith(cfg, true, threads), scalar)
                << "round " << round << ", threads " << threads
                << ", trace " << traceKindName(cfg.traceKind)
                << ", mode " << operatingModeName(cfg.mode)
                << ", balancer " << cfg.balancerPolicy;
        }
    }
}

// Snapshot/resume on the SoA layout with the batched kernel on: the
// flattened pending-age windows, shard flag bytes, and memo fields
// must survive the round trip onto the reference bits.
TEST(BatchKernel, SnapshotRoundTripStaysBitIdentical)
{
    const ScratchDir dir("batch_resume");

    ScenarioConfig cfg = presets::fig13(presets::fiosNeofog(), 3);
    cfg.chains = 3;
    cfg.horizon = kHour;
    cfg.seed = 31;

    const SystemReport reference = FogSystem(cfg).run();

    constexpr std::int64_t kEvery = 9;
    ScenarioConfig snapping = cfg;
    snapping.snapshot.everySlots = kEvery;
    snapping.snapshot.dir = dir.path();
    EXPECT_EQ(FogSystem(snapping).run(), reference);

    const std::int64_t split = kEvery * 2;
    const std::string path = dir.file(snapshot::snapshotFileName(split));
    ASSERT_TRUE(fs::exists(path)) << path;
    for (const unsigned threads : {1u, 4u}) {
        auto resumed = FogSystem::resume(path, threads);
        EXPECT_EQ(resumed->resumeSlot(), split);
        EXPECT_EQ(resumed->run(), reference)
            << "resume diverged at threads=" << threads;
    }

    // A resume must also agree when the host flips the kernel off —
    // the flag is host-local tuning, not simulated state.
    auto resumed = FogSystem::resume(path);
    ScenarioConfig no_batch = resumed->config();
    EXPECT_TRUE(no_batch.batchSlotKernel);
}

void
expectResultsEqual(const IntermittentExecution::Result &a,
                   const IntermittentExecution::Result &b,
                   const std::string &what)
{
    EXPECT_EQ(a.instructionsCompleted, b.instructionsCompleted) << what;
    EXPECT_EQ(a.instructionsWasted, b.instructionsWasted) << what;
    EXPECT_EQ(a.powerCycles, b.powerCycles) << what;
    EXPECT_EQ(a.activeTime, b.activeTime) << what;
    EXPECT_EQ(a.overheadTime, b.overheadTime) << what;
    EXPECT_EQ(a.harvested.joules(), b.harvested.joules()) << what;
    EXPECT_EQ(a.spent.joules(), b.spent.joules()) << what;
}

// runBatch over scaled views of one shared stream == per-trace run(),
// field for field, both with the prefix-table base the fleet uses and
// with the raw stream.
TEST(RunBatch, MatchesPerTraceRunOnSharedScaledViews)
{
    const Tick horizon = 10 * kMin;
    for (const bool cached : {false, true}) {
        std::shared_ptr<const PowerTrace> base;
        if (cached)
            base = std::make_shared<CumulativeTrace>(
                traces::makeRainUnitStream(11, horizon + kMin),
                horizon + kMin);
        else
            base = traces::makeRainUnitStream(11, horizon + kMin);

        Rng rng(3);
        std::vector<std::unique_ptr<ScaledTrace>> owned;
        std::vector<const PowerTrace *> batch;
        for (int i = 0; i < 12; ++i) {
            owned.push_back(std::make_unique<ScaledTrace>(
                0.0022 * rng.uniform(0.4, 1.6), base));
            batch.push_back(owned.back().get());
        }

        const NvProcessor nvp{NvProcessor::fiosConfig()};
        IntermittentExecution::Config cfg;

        const auto results =
            IntermittentExecution::runBatch(nvp, batch, horizon, cfg);
        ASSERT_EQ(results.size(), batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const auto solo = IntermittentExecution::run(
                nvp, *batch[i], horizon, cfg);
            expectResultsEqual(results[i], solo,
                               std::string("machine ") +
                                   std::to_string(i) +
                                   (cached ? " (cached)" : " (raw)"));
        }
    }
}

// Constant traces of different levels share (trivial) segmentation;
// the stepped reference path (fastForward off) must also agree.
TEST(RunBatch, MatchesPerTraceRunOnConstantTraces)
{
    const Tick horizon = 5 * kMin;
    std::vector<std::unique_ptr<ConstantTrace>> owned;
    std::vector<const PowerTrace *> batch;
    for (int i = 0; i < 6; ++i) {
        owned.push_back(std::make_unique<ConstantTrace>(
            Power::fromMicrowatts(40.0 + 25.0 * i)));
        batch.push_back(owned.back().get());
    }

    const NvProcessor nvp;
    for (const bool fast_forward : {true, false}) {
        IntermittentExecution::Config cfg;
        cfg.fastForward = fast_forward;
        const auto results =
            IntermittentExecution::runBatch(nvp, batch, horizon, cfg);
        ASSERT_EQ(results.size(), batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const auto solo = IntermittentExecution::run(
                nvp, *batch[i], horizon, cfg);
            expectResultsEqual(
                results[i], solo,
                std::string(fast_forward ? "ff" : "stepped") +
                    " machine " + std::to_string(i));
        }
    }
}

TEST(RunBatch, RejectsNullTraceAndBadConfig)
{
    const NvProcessor nvp;
    ConstantTrace trace(Power::fromMicrowatts(100.0));
    std::vector<const PowerTrace *> batch{&trace, nullptr};
    EXPECT_THROW(
        IntermittentExecution::runBatch(nvp, batch, kSec, {}),
        FatalError);

    IntermittentExecution::Config bad;
    bad.onThreshold = Energy::fromMicrojoules(10.0);
    bad.offThreshold = Energy::fromMicrojoules(20.0);
    std::vector<const PowerTrace *> ok{&trace};
    EXPECT_THROW(
        IntermittentExecution::runBatch(nvp, ok, kSec, bad),
        FatalError);
}

} // namespace
} // namespace neofog
