/**
 * @file
 * Tests for the energy substrate: traces, capacitor, front ends.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "energy/capacitor.hh"
#include "energy/frontend.hh"
#include "energy/power_trace.hh"
#include "sim/logging.hh"

namespace neofog {
namespace {

using namespace neofog::literals;

TEST(ConstantTrace, ExactIntegration)
{
    ConstantTrace trace(Power::fromMilliwatts(2.0));
    EXPECT_DOUBLE_EQ(trace.integrate(0, kSec).millijoules(), 2.0);
    EXPECT_DOUBLE_EQ(trace.integrate(kSec, 3 * kSec).millijoules(), 4.0);
    EXPECT_DOUBLE_EQ(trace.integrate(5, 5).joules(), 0.0);
}

TEST(PiecewiseTrace, StepLookup)
{
    PiecewiseTrace trace({{0, 1.0_mW}, {kSec, 3.0_mW}, {2 * kSec, 0.0_mW}});
    EXPECT_DOUBLE_EQ(trace.at(0).milliwatts(), 1.0);
    EXPECT_DOUBLE_EQ(trace.at(kSec - 1).milliwatts(), 1.0);
    EXPECT_DOUBLE_EQ(trace.at(kSec).milliwatts(), 3.0);
    EXPECT_DOUBLE_EQ(trace.at(10 * kSec).milliwatts(), 0.0);
}

TEST(PiecewiseTrace, ZeroBeforeFirstSegment)
{
    PiecewiseTrace trace({{kSec, 1.0_mW}});
    EXPECT_DOUBLE_EQ(trace.at(0).watts(), 0.0);
    EXPECT_DOUBLE_EQ(trace.integrate(0, kSec).joules(), 0.0);
}

TEST(PiecewiseTrace, ExactIntegralAcrossSegments)
{
    PiecewiseTrace trace({{0, 1.0_mW}, {kSec, 3.0_mW}});
    // 0.5 s at 1 mW + 1.5 s spanning the boundary.
    const Energy e = trace.integrate(500 * kMs, 2 * kSec);
    EXPECT_NEAR(e.millijoules(), 0.5 * 1.0 + 1.0 * 3.0, 1e-12);
}

TEST(PiecewiseTrace, DefaultIntegrateMatchesExact)
{
    PiecewiseTrace trace({{0, 2.0_mW}, {3 * kSec, 5.0_mW}});
    const Energy exact = trace.integrate(0, 6 * kSec);
    // Base-class sampling path via a PowerTrace reference.
    const PowerTrace &base = trace;
    const Energy sampled = base.PowerTrace::integrate(0, 6 * kSec);
    // Trapezoid sampling smears the step over one ~1 s substep: the
    // error bound is |dP| * step / 2 = 1.5 mJ here.
    EXPECT_NEAR(sampled.joules(), exact.joules(), 1.6e-3);
}

TEST(DiurnalSolarTrace, ZeroAtNightPeakAtNoon)
{
    DiurnalSolarTrace::Config cfg;
    cfg.peak = 100.0_mW;
    cfg.dayLength = 12 * kHour;
    cfg.sunriseOffset = 0;
    DiurnalSolarTrace trace(cfg);
    EXPECT_DOUBLE_EQ(trace.at(12 * kHour).watts(), 0.0);
    EXPECT_DOUBLE_EQ(trace.at(13 * kHour).watts(), 0.0);
    EXPECT_NEAR(trace.at(6 * kHour).milliwatts(), 100.0, 1e-9);
    EXPECT_GT(trace.at(3 * kHour).milliwatts(), 60.0);
}

TEST(DiurnalSolarTrace, AttenuationScales)
{
    DiurnalSolarTrace::Config cfg;
    cfg.peak = 100.0_mW;
    cfg.sunriseOffset = 0;
    cfg.attenuation = 0.1;
    DiurnalSolarTrace trace(cfg);
    EXPECT_NEAR(trace.at(6 * kHour).milliwatts(), 10.0, 1e-9);
}

class TraceFactoryTest : public ::testing::TestWithParam<int>
{
};

TEST_P(TraceFactoryTest, ForestTraceMeanNearTarget)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const Tick horizon = 5 * kHour;
    const Power target = 2.0_mW;
    // Average over several nodes: individual nodes vary by design
    // (site gains), but the ensemble mean should be near the target.
    double sum = 0.0;
    const int nodes = 40;
    for (int i = 0; i < nodes; ++i) {
        auto t = traces::makeForestTrace(rng, horizon, target);
        sum += t->integrate(0, horizon).joules() /
               secondsFromTicks(horizon);
    }
    EXPECT_NEAR(sum / nodes, target.watts(), target.watts() * 0.5);
}

TEST_P(TraceFactoryTest, BridgeTraceMeanCloseAndDependent)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
    const Tick horizon = 5 * kHour;
    const Power target = 2.4_mW;
    auto t = traces::makeBridgeTrace(GetParam() % 5, rng, horizon,
                                     target);
    const double mean =
        t->integrate(0, horizon).joules() / secondsFromTicks(horizon);
    // Dependent traces have only 30% per-node variance.
    EXPECT_NEAR(mean, target.watts(), target.watts() * 0.9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceFactoryTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(TraceFactories, RainSharedScheduleIsShared)
{
    Rng n1(1), n2(2);
    const Tick horizon = kHour;
    auto a = traces::makeRainTrace(555, n1, horizon, 1.0_mW);
    auto b = traces::makeRainTrace(555, n2, horizon, 1.0_mW);
    // Same spell schedule: the power ratio between nodes is constant
    // over time (only the per-node gain differs).
    const double r0 = a->at(10 * kMin).watts() / b->at(10 * kMin).watts();
    for (Tick t = 0; t < horizon; t += 7 * kMin) {
        if (b->at(t).watts() <= 0.0)
            continue;
        EXPECT_NEAR(a->at(t).watts() / b->at(t).watts(), r0, 1e-9);
    }
}

// Property: integration is additive over adjacent intervals for every
// trace family.
class TraceAdditivity : public ::testing::TestWithParam<int>
{
  protected:
    std::unique_ptr<PowerTrace>
    make(int kind)
    {
        Rng rng(99);
        const Tick h = kHour;
        switch (kind) {
          case 0:
            return std::make_unique<ConstantTrace>(2.0_mW);
          case 1:
            return std::make_unique<PiecewiseTrace>(
                std::vector<PiecewiseTrace::Segment>{
                    {0, 1.0_mW}, {10 * kMin, 4.0_mW},
                    {30 * kMin, 0.5_mW}});
          case 2:
            return traces::makeForestTrace(rng, h, 2.0_mW);
          case 3:
            return traces::makeBridgeTrace(1, rng, h, 2.0_mW);
          case 4:
            return traces::makeRainTrace(5, rng, h, 1.0_mW);
          case 5:
            return traces::makeMountainTrace(rng, h, 5.0_mW);
          case 6:
            return traces::makePiezoTrace(rng, h, 5.0_mW, 10.0);
          default:
            return traces::makeRfTrace(rng, h, 0.3_mW);
        }
    }
};

TEST_P(TraceAdditivity, SplitIntegralsSum)
{
    auto trace = make(GetParam());
    Rng rng(GetParam());
    for (int trial = 0; trial < 20; ++trial) {
        const Tick a = rng.uniformInt(0, kHour - 2);
        const Tick c = rng.uniformInt(a + 2, kHour);
        const Tick b = rng.uniformInt(a + 1, c - 1);
        const double whole = trace->integrate(a, c).joules();
        const double split = trace->integrate(a, b).joules() +
                             trace->integrate(b, c).joules();
        EXPECT_NEAR(split, whole, std::max(1e-12, whole * 0.02))
            << trace->describe();
    }
}

TEST_P(TraceAdditivity, NonNegativeEverywhere)
{
    auto trace = make(GetParam());
    for (Tick t = 0; t < kHour; t += 97 * kSec)
        EXPECT_GE(trace->at(t).watts(), 0.0) << trace->describe();
}

INSTANTIATE_TEST_SUITE_P(AllKinds, TraceAdditivity,
                         ::testing::Range(0, 8));

TEST(TraceFactories, PiezoIsBursty)
{
    Rng rng(5);
    auto t = traces::makePiezoTrace(rng, kHour, 10.0_mW, 6.0);
    int zero = 0, nonzero = 0;
    for (Tick at = 0; at < kHour; at += kSec) {
        if (t->at(at).watts() > 0.0)
            ++nonzero;
        else
            ++zero;
    }
    EXPECT_GT(zero, nonzero); // mostly quiet
    EXPECT_GT(nonzero, 0);    // but some pulses land
}

TEST(TraceFactories, RfTraceAlwaysPositive)
{
    Rng rng(6);
    auto t = traces::makeRfTrace(rng, kHour, 0.1_mW);
    for (Tick at = 0; at < kHour; at += 30 * kSec)
        EXPECT_GT(t->at(at).watts(), 0.0);
}

TEST(SuperCapacitor, ChargeRespectsCapacity)
{
    SuperCapacitor cap({10.0_mJ, 0.0_mJ, Power::zero()});
    EXPECT_DOUBLE_EQ(cap.charge(4.0_mJ).millijoules(), 4.0);
    EXPECT_DOUBLE_EQ(cap.charge(8.0_mJ).millijoules(), 6.0);
    EXPECT_DOUBLE_EQ(cap.stored().millijoules(), 10.0);
    EXPECT_DOUBLE_EQ(cap.overflowTotal().millijoules(), 2.0);
    EXPECT_DOUBLE_EQ(cap.fillFraction(), 1.0);
}

TEST(SuperCapacitor, TryDischargeAtomicity)
{
    SuperCapacitor cap({10.0_mJ, 5.0_mJ, Power::zero()});
    EXPECT_FALSE(cap.tryDischarge(6.0_mJ));
    EXPECT_DOUBLE_EQ(cap.stored().millijoules(), 5.0);
    EXPECT_TRUE(cap.tryDischarge(5.0_mJ));
    EXPECT_DOUBLE_EQ(cap.stored().millijoules(), 0.0);
}

TEST(SuperCapacitor, DrainPartial)
{
    SuperCapacitor cap({10.0_mJ, 3.0_mJ, Power::zero()});
    EXPECT_DOUBLE_EQ(cap.drain(5.0_mJ).millijoules(), 3.0);
    EXPECT_DOUBLE_EQ(cap.stored().joules(), 0.0);
}

TEST(SuperCapacitor, LeakageBounded)
{
    SuperCapacitor cap({10.0_mJ, 1.0_mJ, Power::fromMilliwatts(1.0)});
    cap.leak(10 * kSec); // would leak 10 mJ, only 1 stored
    EXPECT_DOUBLE_EQ(cap.stored().joules(), 0.0);
    EXPECT_DOUBLE_EQ(cap.leakedTotal().millijoules(), 1.0);
}

TEST(SuperCapacitor, AccountingConsistent)
{
    SuperCapacitor cap({100.0_mJ, 0.0_mJ, Power::fromMicrowatts(10.0)});
    cap.charge(60.0_mJ);
    cap.tryDischarge(20.0_mJ);
    cap.leak(kSec);
    const double expect_stored = 60.0 - 20.0 - 0.01;
    EXPECT_NEAR(cap.stored().millijoules(), expect_stored, 1e-9);
    EXPECT_NEAR(cap.chargedTotal().millijoules(), 60.0, 1e-12);
    EXPECT_NEAR(cap.dischargedTotal().millijoules(), 20.0, 1e-12);
}

TEST(SuperCapacitor, BadConfigsRejected)
{
    EXPECT_THROW(SuperCapacitor({Energy::zero(), Energy::zero(),
                                 Power::zero()}),
                 FatalError);
    EXPECT_THROW(SuperCapacitor({1.0_mJ, 2.0_mJ, Power::zero()}),
                 FatalError);
}

TEST(SuperCapacitor, SetStoredValidated)
{
    SuperCapacitor cap({10.0_mJ, 0.0_mJ, Power::zero()});
    cap.setStored(7.0_mJ);
    EXPECT_DOUBLE_EQ(cap.stored().millijoules(), 7.0);
    EXPECT_THROW(cap.setStored(11.0_mJ), FatalError);
}

TEST(FrontEnd, NosRoundTripLossy)
{
    const FrontEnd fe = FrontEnd::makeNos();
    const Energy banked = fe.incomeToCap(100.0_mJ);
    // 0.8 harvest x 0.7 charge = 56 mJ banked.
    EXPECT_NEAR(banked.millijoules(), 56.0, 1e-9);
    // Delivering 56 mJ at the load needs 56/0.85 from the cap.
    EXPECT_NEAR(fe.capCostForLoad(banked).millijoules(), 56.0 / 0.85,
                1e-9);
    // NOS has no direct channel.
    EXPECT_DOUBLE_EQ(fe.incomeToLoadDirect(100.0_mJ).joules(), 0.0);
}

TEST(FrontEnd, FiosDirectChannel)
{
    const FrontEnd fe = FrontEnd::makeFios();
    EXPECT_NEAR(fe.incomeToLoadDirect(100.0_mJ).millijoules(),
                100.0 * 0.8 * 0.9, 1e-9);
}

TEST(FrontEnd, DirectAdvantageInPaperRange)
{
    // The paper cites 2.2x-5x forward-progress benefit for FIOS; the
    // steady-state front-end component of that is direct/roundtrip.
    const FrontEnd fe = FrontEnd::makeFios();
    EXPECT_GT(fe.directAdvantage(), 1.2);
    EXPECT_LT(fe.directAdvantage(), 5.0);
}

TEST(FrontEnd, RejectsBadEfficiency)
{
    FrontEnd::Config cfg;
    cfg.harvestEfficiency = 0.0;
    EXPECT_THROW(FrontEnd{cfg}, FatalError);
    cfg.harvestEfficiency = 1.5;
    EXPECT_THROW(FrontEnd{cfg}, FatalError);
}

} // namespace
} // namespace neofog
