/**
 * @file
 * Tests for the compression pipeline, including property-style
 * round-trip sweeps over content classes and sizes (TEST_P).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "kernels/compress.hh"
#include "kernels/signal_gen.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace neofog::kernels {
namespace {

TEST(Varint, RoundTripValues)
{
    for (std::uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull,
                            1ull << 20, 1ull << 35, ~0ull}) {
        Bytes buf;
        putVarint(buf, v);
        std::size_t pos = 0;
        EXPECT_EQ(getVarint(buf, pos), v);
        EXPECT_EQ(pos, buf.size());
    }
}

TEST(Varint, TruncatedFails)
{
    Bytes buf{0x80}; // continuation bit with no following byte
    std::size_t pos = 0;
    EXPECT_THROW(getVarint(buf, pos), FatalError);
}

TEST(Zigzag, RoundTrip)
{
    const std::int64_t cases[] = {0, 1, -1, 1000, -1000, INT64_MAX,
                                  INT64_MIN + 1};
    for (std::int64_t v : cases) {
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
    }
    EXPECT_EQ(zigzagEncode(0), 0u);
    EXPECT_EQ(zigzagEncode(-1), 1u);
    EXPECT_EQ(zigzagEncode(1), 2u);
}

TEST(Delta, RoundTrip)
{
    Bytes in{10, 12, 12, 250, 0, 7};
    EXPECT_EQ(deltaDecode(deltaEncode(in)), in);
}

TEST(Delta, ConstantBecomesZeros)
{
    Bytes in(100, 42);
    const Bytes d = deltaEncode(in);
    EXPECT_EQ(d[0], 42);
    for (std::size_t i = 1; i < d.size(); ++i)
        EXPECT_EQ(d[i], 0);
}

TEST(Rle, RoundTripMixed)
{
    Bytes in;
    for (int i = 0; i < 10; ++i)
        in.push_back(static_cast<std::uint8_t>(i));
    in.insert(in.end(), 50, 7);
    in.push_back(9);
    in.insert(in.end(), 200, 0);
    EXPECT_EQ(rleDecode(rleEncode(in)), in);
}

TEST(Rle, CompressesRuns)
{
    Bytes in(10000, 5);
    EXPECT_LT(rleEncode(in).size(), 20u);
}

TEST(Rle, EmptyInput)
{
    EXPECT_TRUE(rleDecode(rleEncode(Bytes{})).empty());
}

TEST(Lz77, RoundTripRepetitive)
{
    Bytes in;
    for (int rep = 0; rep < 100; ++rep) {
        for (std::uint8_t b : {1, 2, 3, 4, 5, 6, 7})
            in.push_back(b);
    }
    const Bytes enc = lz77Encode(in);
    EXPECT_LT(enc.size(), in.size() / 4);
    EXPECT_EQ(lz77Decode(enc), in);
}

TEST(Lz77, OverlappingMatch)
{
    // "aaaa..." forces overlapping copies.
    Bytes in(1000, 'a');
    EXPECT_EQ(lz77Decode(lz77Encode(in)), in);
}

TEST(Lz77, CorruptOffsetFails)
{
    Bytes bogus;
    putVarint(bogus, 0);  // no literals
    putVarint(bogus, 99); // offset beyond output
    putVarint(bogus, 5);
    EXPECT_THROW(lz77Decode(bogus), FatalError);
}

TEST(Compress, SelfDescribingHeader)
{
    Bytes in(1000, 9);
    const Bytes c = compress(in);
    EXPECT_FALSE(c.empty());
    EXPECT_EQ(decompress(c), in);
}

TEST(Compress, IncompressibleStoredRaw)
{
    Rng rng(11);
    Bytes in(500);
    for (auto &b : in)
        b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    const Bytes c = compress(in);
    // Raw + 1 header byte at worst.
    EXPECT_LE(c.size(), in.size() + 1);
    EXPECT_EQ(decompress(c), in);
}

TEST(Compress, EmptyDecompressFails)
{
    EXPECT_THROW(decompress(Bytes{}), FatalError);
}

TEST(Compress, SensorBatchHitsPaperRatios)
{
    // A realistic quantized temperature batch compresses into the
    // paper's 3-14.5% window.  Quantization uses the TMP101's actual
    // 0.0625 C resolution (a 256 C span over 12 bits), so sensor noise
    // sits below the quantization step and codes repeat — the "many
    // repeated patterns" the paper credits for the high ratios.
    Rng rng(13);
    const auto sig = temperatureSignal(rng, 32 * 1024, 20.0, 8.0, 0.005);
    const Bytes raw = quantize16(sig, -40.0, -40.0 + 65536.0 * 0.0625);
    const double ratio = compressionRatio(raw);
    EXPECT_GT(ratio, 0.003);
    EXPECT_LT(ratio, 0.15);
}

TEST(Quantize16, RoundTripWithinStep)
{
    const std::vector<double> sig{-40.0, 0.0, 20.5, 84.99};
    const Bytes q = quantize16(sig, -40.0, 85.0);
    EXPECT_EQ(q.size(), 8u);
    const auto back = dequantize16(q, -40.0, 85.0);
    const double step = 125.0 / 65535.0;
    for (std::size_t i = 0; i < sig.size(); ++i)
        EXPECT_NEAR(back[i], sig[i], step);
}

TEST(Quantize16, ClampsOutOfRange)
{
    const Bytes q = quantize16({1000.0, -1000.0}, 0.0, 1.0);
    const auto back = dequantize16(q, 0.0, 1.0);
    EXPECT_NEAR(back[0], 1.0, 1e-4);
    EXPECT_NEAR(back[1], 0.0, 1e-4);
}

// ---------------------------------------------------------------------
// Property sweep: round trip across content classes and sizes.
// ---------------------------------------------------------------------

enum class Content
{
    Random,
    Runs,
    Periodic,
    QuantizedEcg,
    ImageRows,
};

class CompressRoundTrip
    : public ::testing::TestWithParam<std::tuple<Content, int>>
{
  protected:
    Bytes
    make(Content c, std::size_t n)
    {
        Rng rng(static_cast<std::uint64_t>(n) * 31 + 1);
        Bytes out;
        switch (c) {
          case Content::Random:
            out.resize(n);
            for (auto &b : out)
                b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
            break;
          case Content::Runs:
            while (out.size() < n) {
                const auto len = static_cast<std::size_t>(
                    rng.uniformInt(1, 64));
                const auto val = static_cast<std::uint8_t>(
                    rng.uniformInt(0, 7));
                out.insert(out.end(), len, val);
            }
            out.resize(n);
            break;
          case Content::Periodic:
            out.resize(n);
            for (std::size_t i = 0; i < n; ++i)
                out[i] = static_cast<std::uint8_t>(i % 17);
            break;
          case Content::QuantizedEcg: {
            // Clean beats quantized at a physiologically sensible LSB
            // (10-bit effective over the +-2 mV band).
            const auto sig =
                ecgSignal(rng, n / 2 + 8, 250.0, 72.0, 0.0);
            out = quantize16(sig, -32.0, 32.0);
            out.resize(n);
            break;
          }
          case Content::ImageRows: {
            while (out.size() < n) {
                const auto row = imageRow(rng, 128);
                for (double v : row)
                    out.push_back(static_cast<std::uint8_t>(v));
            }
            out.resize(n);
            break;
          }
        }
        return out;
    }
};

TEST_P(CompressRoundTrip, Lossless)
{
    const auto [content, size] = GetParam();
    const Bytes in = make(content, static_cast<std::size_t>(size));
    const Bytes c = compress(in);
    EXPECT_EQ(decompress(c), in);
}

TEST_P(CompressRoundTrip, StructuredContentShrinks)
{
    const auto [content, size] = GetParam();
    if (content == Content::Random || size < 256)
        GTEST_SKIP() << "incompressible class";
    const Bytes in = make(content, static_cast<std::size_t>(size));
    EXPECT_LT(compress(in).size(), in.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompressRoundTrip,
    ::testing::Combine(
        ::testing::Values(Content::Random, Content::Runs,
                          Content::Periodic, Content::QuantizedEcg,
                          Content::ImageRows),
        ::testing::Values(0, 1, 2, 100, 1024, 65536)));

} // namespace
} // namespace neofog::kernels
