/**
 * @file
 * Unit tests for the Energy/Power/Tick unit types.
 */

#include <gtest/gtest.h>

#include "sim/types.hh"
#include "sim/units.hh"

namespace neofog {
namespace {

using namespace neofog::literals;

TEST(Ticks, Constants)
{
    EXPECT_EQ(kMs, 1000);
    EXPECT_EQ(kSec, 1000 * 1000);
    EXPECT_EQ(kMin, 60 * kSec);
    EXPECT_EQ(kHour, 60 * kMin);
}

TEST(Ticks, SecondsRoundTrip)
{
    EXPECT_EQ(ticksFromSeconds(1.5), kSec + 500 * kMs);
    EXPECT_DOUBLE_EQ(secondsFromTicks(ticksFromSeconds(12.0)), 12.0);
}

TEST(Ticks, MsRoundTrip)
{
    EXPECT_EQ(ticksFromMs(0.5), 500);
    EXPECT_DOUBLE_EQ(msFromTicks(1500), 1.5);
}

TEST(Ticks, FiveHourHorizonFits)
{
    const Tick horizon = 5 * kHour;
    EXPECT_EQ(horizon, 18'000'000'000LL);
    EXPECT_LT(horizon, kTickNever);
}

TEST(Energy, FactoriesAgree)
{
    EXPECT_DOUBLE_EQ(Energy::fromJoules(1.0).millijoules(), 1000.0);
    EXPECT_DOUBLE_EQ(Energy::fromMillijoules(1.0).microjoules(), 1000.0);
    EXPECT_DOUBLE_EQ(Energy::fromMicrojoules(1.0).nanojoules(), 1000.0);
    EXPECT_DOUBLE_EQ(Energy::fromNanojoules(1e9).joules(), 1.0);
}

TEST(Energy, Arithmetic)
{
    const Energy a = 3.0_mJ;
    const Energy b = 1.0_mJ;
    EXPECT_DOUBLE_EQ((a + b).millijoules(), 4.0);
    EXPECT_DOUBLE_EQ((a - b).millijoules(), 2.0);
    EXPECT_DOUBLE_EQ((a * 2.0).millijoules(), 6.0);
    EXPECT_DOUBLE_EQ((2.0 * a).millijoules(), 6.0);
    EXPECT_DOUBLE_EQ((a / 3.0).millijoules(), 1.0);
    EXPECT_DOUBLE_EQ(a / b, 3.0);
}

TEST(Energy, CompoundAssignment)
{
    Energy e = 1.0_mJ;
    e += 2.0_mJ;
    EXPECT_DOUBLE_EQ(e.millijoules(), 3.0);
    e -= 1.0_mJ;
    EXPECT_DOUBLE_EQ(e.millijoules(), 2.0);
    e *= 2.0;
    EXPECT_DOUBLE_EQ(e.millijoules(), 4.0);
}

TEST(Energy, Comparisons)
{
    EXPECT_LT(1.0_mJ, 2.0_mJ);
    EXPECT_GT(1.0_J, 999.0_mJ);
    EXPECT_NEAR((1000.0_nJ).joules(), (1.0_uJ).joules(), 1e-18);
}

TEST(Energy, ClampNonNegative)
{
    const Energy neg = 1.0_mJ - 2.0_mJ;
    EXPECT_LT(neg.joules(), 0.0);
    EXPECT_DOUBLE_EQ(neg.clampedNonNegative().joules(), 0.0);
    EXPECT_DOUBLE_EQ((2.0_mJ).clampedNonNegative().millijoules(), 2.0);
}

TEST(Power, FactoriesAgree)
{
    EXPECT_DOUBLE_EQ(Power::fromWatts(1.0).milliwatts(), 1000.0);
    EXPECT_DOUBLE_EQ(Power::fromMilliwatts(1.0).microwatts(), 1000.0);
    EXPECT_DOUBLE_EQ(Power::fromMicrowatts(2.0).watts(), 2e-6);
}

TEST(Power, TimesTickIsEnergy)
{
    // 89.1 mW for 32 us = 2851.2 nJ: the paper's per-byte TX energy.
    const Energy e = 89.1_mW * (32 * kUs);
    EXPECT_NEAR(e.nanojoules(), 2851.2, 1e-6);
}

TEST(Power, OverDuration)
{
    const Energy e = Power::fromMilliwatts(10.0).over(kSec);
    EXPECT_DOUBLE_EQ(e.millijoules(), 10.0);
}

TEST(Power, Arithmetic)
{
    const Power p = 10.0_mW + 5.0_mW;
    EXPECT_DOUBLE_EQ(p.milliwatts(), 15.0);
    EXPECT_DOUBLE_EQ((p - 5.0_mW).milliwatts(), 10.0);
    EXPECT_DOUBLE_EQ((p * 2.0).milliwatts(), 30.0);
    EXPECT_DOUBLE_EQ(p / 5.0_mW, 3.0);
}

TEST(Power, TicksToSpend)
{
    // 1 mJ at 1 mW takes 1 second.
    EXPECT_EQ(ticksToSpend(Energy::fromMillijoules(1.0),
                           Power::fromMilliwatts(1.0)),
              kSec);
    EXPECT_EQ(ticksToSpend(Energy::fromMillijoules(1.0), Power::zero()),
              kTickNever);
}

TEST(Units, InstructionEnergyConstant)
{
    // 0.209 mW at 1 MHz with 12 clocks/instruction = 2.508 nJ.
    const Energy per_inst = 0.209_mW * (12 * kUs / 12);
    // 12 cycles at 1 MHz = 12 us.
    const Energy e = 0.209_mW * (12 * kUs);
    EXPECT_NEAR(e.nanojoules(), 2.508, 1e-9);
    (void)per_inst;
}

} // namespace
} // namespace neofog
