/**
 * @file
 * Tests for the FFT kernel.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/fft.hh"
#include "kernels/signal_gen.hh"
#include "sim/rng.hh"

namespace neofog::kernels {
namespace {

TEST(Fft, PowerOfTwoHelpers)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(6));
    EXPECT_EQ(nextPowerOfTwo(0), 1u);
    EXPECT_EQ(nextPowerOfTwo(1), 1u);
    EXPECT_EQ(nextPowerOfTwo(5), 8u);
    EXPECT_EQ(nextPowerOfTwo(1024), 1024u);
}

TEST(Fft, ImpulseGivesFlatSpectrum)
{
    std::vector<std::complex<double>> data(8, {0.0, 0.0});
    data[0] = {1.0, 0.0};
    fft(data);
    for (const auto &x : data)
        EXPECT_NEAR(std::abs(x), 1.0, 1e-12);
}

TEST(Fft, DcGivesSingleBin)
{
    std::vector<std::complex<double>> data(16, {1.0, 0.0});
    fft(data);
    EXPECT_NEAR(std::abs(data[0]), 16.0, 1e-12);
    for (std::size_t i = 1; i < 16; ++i)
        EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-12);
}

TEST(Fft, InverseRoundTrip)
{
    Rng rng(3);
    std::vector<std::complex<double>> data(64);
    std::vector<std::complex<double>> orig(64);
    for (std::size_t i = 0; i < 64; ++i) {
        data[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
        orig[i] = data[i];
    }
    fft(data);
    fft(data, /*inverse=*/true);
    for (std::size_t i = 0; i < 64; ++i) {
        EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-10);
        EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-10);
    }
}

TEST(Fft, ParsevalHolds)
{
    Rng rng(5);
    std::vector<std::complex<double>> data(128);
    double time_energy = 0.0;
    for (auto &x : data) {
        x = {rng.uniform(-1, 1), 0.0};
        time_energy += std::norm(x);
    }
    fft(data);
    double freq_energy = 0.0;
    for (const auto &x : data)
        freq_energy += std::norm(x);
    EXPECT_NEAR(freq_energy / 128.0, time_energy, 1e-9);
}

TEST(Fft, SinusoidPeaksAtItsBin)
{
    const std::size_t n = 256;
    std::vector<double> sig(n);
    const double freq_bin = 17.0;
    for (std::size_t i = 0; i < n; ++i)
        sig[i] = std::sin(2.0 * M_PI * freq_bin *
                          static_cast<double>(i) / n);
    const auto mags = magnitudeSpectrum(sig);
    std::size_t peak = 0;
    for (std::size_t i = 1; i < mags.size(); ++i) {
        if (mags[i] > mags[peak])
            peak = i;
    }
    EXPECT_EQ(peak, 17u);
}

TEST(Fft, DominantFrequenciesFindsFundamental)
{
    Rng rng(7);
    const double rate = 100.0;
    const double f0 = 1.25;
    const auto sig = bridgeVibration(rng, 4096, rate, f0, 0.05);
    const auto freqs = dominantFrequencies(sig, rate, 3);
    ASSERT_FALSE(freqs.empty());
    // The strongest component is the fundamental.
    EXPECT_NEAR(freqs[0], f0, rate / 4096.0 * 2.0);
}

TEST(Fft, DominantFrequenciesFindsHarmonics)
{
    Rng rng(9);
    const double rate = 100.0;
    const double f0 = 1.5;
    const auto sig = bridgeVibration(rng, 8192, rate, f0, 0.01);
    const auto freqs = dominantFrequencies(sig, rate, 3);
    ASSERT_GE(freqs.size(), 2u);
    // Some returned peak sits near the 2nd harmonic.
    bool found2 = false;
    for (double f : freqs)
        found2 |= std::abs(f - 2.0 * f0) < 0.1;
    EXPECT_TRUE(found2);
}

TEST(Fft, RealFftPadsToPowerOfTwo)
{
    std::vector<double> sig(100, 1.0);
    const auto spec = realFft(sig);
    EXPECT_EQ(spec.size(), 128u);
}

TEST(Fft, OpCountGrowsNLogN)
{
    EXPECT_EQ(fftOpCount(1), 1u);
    EXPECT_EQ(fftOpCount(8), 5u * 8u * 3u);
    EXPECT_GT(fftOpCount(2048), 10u * fftOpCount(128));
}

TEST(Fft, EmptySignal)
{
    const auto mags = magnitudeSpectrum({});
    EXPECT_EQ(mags.size(), 1u); // DC bin of the size-1 pad
    EXPECT_TRUE(dominantFrequencies({}, 100.0, 3).empty());
}

} // namespace
} // namespace neofog::kernels
