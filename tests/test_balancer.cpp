/**
 * @file
 * Tests for the chain load balancers.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "balance/balancer.hh"
#include "sim/logging.hh"

namespace neofog {
namespace {

std::vector<LbNodeState>
uniformChain(std::size_t n, int pending, double capacity)
{
    std::vector<LbNodeState> states(n);
    for (auto &s : states) {
        s.alive = true;
        s.pendingTasks = pending;
        s.capacityTasks = capacity;
        s.taskCost = 1.0;
    }
    return states;
}

int
totalPending(const std::vector<int> &p)
{
    return std::accumulate(p.begin(), p.end(), 0);
}

TEST(LbOutcome, ApplyMovesTasks)
{
    LbOutcome out;
    out.moves = {{0, 2, 3}, {1, 2, 1}};
    const auto result = out.apply({5, 5, 0});
    EXPECT_EQ(result, (std::vector<int>{2, 4, 4}));
}

TEST(NoBalancer, DoesNothing)
{
    NoBalancer bal;
    Rng rng(1);
    auto states = uniformChain(10, 3, 0.0);
    const LbOutcome out = bal.balance(states, rng);
    EXPECT_TRUE(out.moves.empty());
    EXPECT_EQ(out.messagesExchanged, 0);
}

TEST(TreeBalancer, MovesFromOverloadedToSpare)
{
    TreeBalancer bal;
    Rng rng(2);
    auto states = uniformChain(8, 2, 0.4);
    states[1].capacityTasks = 4.5; // spare receiver in the left half
    states[6].capacityTasks = 4.5; // and in the right half
    const LbOutcome out = bal.balance(states, rng);
    EXPECT_FALSE(out.moves.empty());
    // Conservation: moves only redistribute.
    std::vector<int> pending(8, 2);
    const auto after = out.apply(pending);
    EXPECT_EQ(totalPending(after), 16);
}

TEST(TreeBalancer, DeadCoordinatorFailsRegion)
{
    TreeBalancer bal;
    Rng rng(3);
    auto states = uniformChain(8, 3, 0.2);
    states[2].capacityTasks = 9.0; // would-be receiver
    // Root coordinator (index 4) is dead: the whole chain region
    // cannot balance (Fig 6(c) failure).
    states[4].alive = false;
    const LbOutcome out = bal.balance(states, rng);
    EXPECT_TRUE(out.moves.empty());
    EXPECT_GE(out.failedRegions, 1);
}

TEST(TreeBalancer, LowEnergyCoordinatorAlsoFails)
{
    TreeBalancer::Config cfg;
    cfg.coordinatorMinCapacity = 1.0;
    TreeBalancer bal(cfg);
    Rng rng(4);
    auto states = uniformChain(8, 3, 0.2);
    states[4].capacityTasks = 0.5; // alive but too weak to coordinate
    const LbOutcome out = bal.balance(states, rng);
    EXPECT_TRUE(out.moves.empty());
    EXPECT_GE(out.failedRegions, 1);
}

TEST(DistributedBalancer, MovesToNeighborsWithSpare)
{
    DistributedBalancer::Config cfg;
    cfg.interruptChance = 0.0;
    DistributedBalancer bal(cfg);
    Rng rng(5);
    auto states = uniformChain(10, 2, 0.5); // everyone overloaded by ~1
    states[4].pendingTasks = 0;
    states[4].capacityTasks = 6.0; // rich node with spare
    const LbOutcome out = bal.balance(states, rng);
    ASSERT_FALSE(out.moves.empty());
    int into4 = 0;
    for (const TaskMove &m : out.moves) {
        EXPECT_NE(m.from, 4u);
        if (m.to == 4)
            into4 += m.tasks;
    }
    EXPECT_GT(into4, 0);
    EXPECT_LE(into4, 6);
}

TEST(DistributedBalancer, RespectsNeighborWindow)
{
    DistributedBalancer::Config cfg;
    cfg.interruptChance = 0.0;
    cfg.neighborWindow = 1;
    DistributedBalancer bal(cfg);
    Rng rng(6);
    auto states = uniformChain(10, 3, 0.0);
    states[9].capacityTasks = 10.0; // spare far from node 0
    const LbOutcome out = bal.balance(states, rng);
    for (const TaskMove &m : out.moves) {
        const auto dist = m.from > m.to ? m.from - m.to : m.to - m.from;
        EXPECT_LE(dist, 1u);
    }
}

TEST(DistributedBalancer, ToleratesDeadNeighbors)
{
    DistributedBalancer::Config cfg;
    cfg.interruptChance = 0.0;
    DistributedBalancer bal(cfg);
    Rng rng(7);
    auto states = uniformChain(5, 2, 0.5);
    states[1].alive = false;
    states[3].alive = false;
    states[2].pendingTasks = 4;
    // Node 2's direct neighbours are dead; window 2 reaches 0 and 4.
    states[0].capacityTasks = 5.0;
    states[0].pendingTasks = 0;
    const LbOutcome out = bal.balance(states, rng);
    bool moved_to_0 = false;
    for (const TaskMove &m : out.moves)
        moved_to_0 |= (m.from == 2 && m.to == 0);
    EXPECT_TRUE(moved_to_0);
}

TEST(DistributedBalancer, InterruptSkipsRegion)
{
    DistributedBalancer::Config cfg;
    cfg.interruptChance = 1.0; // every region interrupts
    DistributedBalancer bal(cfg);
    Rng rng(8);
    auto states = uniformChain(6, 3, 0.0);
    states[3].capacityTasks = 9.0;
    const LbOutcome out = bal.balance(states, rng);
    EXPECT_TRUE(out.moves.empty());
    EXPECT_GT(out.failedRegions, 0);
}

TEST(DistributedBalancer, ConservationUnderRandomStates)
{
    DistributedBalancer bal;
    Rng rng(9);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 4 + static_cast<std::size_t>(
            rng.uniformInt(0, 12));
        std::vector<LbNodeState> states(n);
        std::vector<int> pending(n);
        for (std::size_t i = 0; i < n; ++i) {
            states[i].alive = rng.chance(0.8);
            states[i].pendingTasks =
                static_cast<int>(rng.uniformInt(0, 6));
            states[i].capacityTasks = rng.uniform(0.0, 5.0);
            states[i].taskCost = rng.uniform(0.5, 1.5);
            pending[i] = states[i].pendingTasks;
        }
        const LbOutcome out = bal.balance(states, rng);
        const auto after = out.apply(pending);
        EXPECT_EQ(totalPending(after), totalPending(pending));
        for (int p : after)
            EXPECT_GE(p, 0);
    }
}

TEST(ClusterBalancer, BalancesWithinClusters)
{
    ClusterBalancer bal;
    Rng rng(10);
    auto states = uniformChain(8, 2, 0.4);
    states[1].capacityTasks = 5.0; // receiver in cluster 0
    states[6].capacityTasks = 5.0; // receiver in cluster 1
    const LbOutcome out = bal.balance(states, rng);
    ASSERT_FALSE(out.moves.empty());
    // All moves stay inside their 4-node cluster.
    for (const TaskMove &m : out.moves) {
        EXPECT_EQ(m.from / 4, m.to / 4);
    }
    const auto after = out.apply({2, 2, 2, 2, 2, 2, 2, 2});
    EXPECT_EQ(totalPending(after), 16);
}

TEST(ClusterBalancer, NoViableHeadFailsCluster)
{
    ClusterBalancer bal;
    Rng rng(11);
    auto states = uniformChain(8, 3, 0.1); // nobody can head
    const LbOutcome out = bal.balance(states, rng);
    EXPECT_TRUE(out.moves.empty());
    EXPECT_EQ(out.failedRegions, 2);
}

TEST(ClusterBalancer, InterClusterImbalanceUnaddressed)
{
    // The whole surplus lives in cluster 1; cluster 0's overload
    // cannot reach it — the weakness the distributed scheme avoids.
    ClusterBalancer bal;
    Rng rng(12);
    auto states = uniformChain(8, 0, 0.2);
    for (std::size_t i = 0; i < 4; ++i)
        states[i].pendingTasks = 4;
    for (std::size_t i = 4; i < 8; ++i)
        states[i].capacityTasks = 6.0;
    const LbOutcome out = bal.balance(states, rng);
    for (const TaskMove &m : out.moves)
        EXPECT_LT(m.to, 4u);
}

TEST(ClusterBalancer, RejectsBadConfig)
{
    ClusterBalancer::Config cfg;
    cfg.clusterSize = 1;
    EXPECT_THROW(ClusterBalancer{cfg}, FatalError);
}

TEST(MakeBalancer, FactoryNames)
{
    EXPECT_EQ(makeBalancer("none")->name(), "none");
    EXPECT_EQ(makeBalancer("tree")->name(), "baseline-tree");
    EXPECT_EQ(makeBalancer("cluster")->name(), "cluster-head");
    EXPECT_EQ(makeBalancer("distributed")->name(), "neofog-distributed");
    EXPECT_THROW(makeBalancer("bogus"), FatalError);
}

} // namespace
} // namespace neofog
