/**
 * @file
 * Tests for the extension modules: trace I/O, Goertzel detector,
 * CRC-16, and incidental computing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "energy/power_trace.hh"
#include "energy/trace_io.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"
#include "kernels/goertzel.hh"
#include "kernels/signal_gen.hh"
#include "net/checksum.hh"
#include "node/node.hh"
#include "sim/logging.hh"

namespace neofog {
namespace {

using namespace neofog::literals;

// ---------------------------------------------------------------------
// Trace I/O
// ---------------------------------------------------------------------

TEST(TraceIo, ParsesCsvWithHeaderAndComments)
{
    std::istringstream in(
        "# measured on the roof\n"
        "time_s,power_mw\n"
        "0,1.5\n"
        "10.0,3.0\n"
        "20,0.5\n");
    auto trace = readCsvTrace(in);
    EXPECT_DOUBLE_EQ(trace->at(0).milliwatts(), 1.5);
    EXPECT_DOUBLE_EQ(trace->at(15 * kSec).milliwatts(), 3.0);
    EXPECT_DOUBLE_EQ(trace->at(100 * kSec).milliwatts(), 0.5);
}

TEST(TraceIo, RejectsMalformedRows)
{
    std::istringstream bad1("0,abc\n");
    EXPECT_THROW(readCsvTrace(bad1), FatalError);
    std::istringstream bad2("0\n");
    EXPECT_THROW(readCsvTrace(bad2), FatalError);
    std::istringstream bad3("10,1\n5,1\n"); // time backwards
    EXPECT_THROW(readCsvTrace(bad3), FatalError);
    std::istringstream bad4("");
    EXPECT_THROW(readCsvTrace(bad4), FatalError);
    std::istringstream bad5("0,-1\n");
    EXPECT_THROW(readCsvTrace(bad5), FatalError);
}

TEST(TraceIo, WriteReadRoundTrip)
{
    ConstantTrace source(2.25_mW);
    std::ostringstream out;
    writeCsvTrace(source, 10 * kSec, kSec, out);
    std::istringstream in(out.str());
    auto loaded = readCsvTrace(in);
    for (Tick t = 0; t < 10 * kSec; t += 500 * kMs)
        EXPECT_NEAR(loaded->at(t).milliwatts(), 2.25, 1e-9);
}

TEST(TraceIo, FileRoundTrip)
{
    const std::string path = "/tmp/neofog_test_trace.csv";
    Rng rng(4);
    auto trace = traces::makeForestTrace(rng, 5 * kMin, 2.0_mW);
    saveCsvTrace(*trace, 5 * kMin, 10 * kSec, path);
    auto loaded = loadCsvTrace(path);
    // The sampled trace approximates the original's energy.
    const double orig = trace->integrate(0, 5 * kMin).millijoules();
    const double back = loaded->integrate(0, 5 * kMin).millijoules();
    EXPECT_NEAR(back, orig, orig * 0.1 + 1.0);
    EXPECT_THROW(loadCsvTrace("/nonexistent/nope.csv"), FatalError);
}

TEST(InterpolatedTrace, LinearBetweenKnots)
{
    InterpolatedTrace trace({{0, 1.0_mW}, {10 * kSec, 3.0_mW}});
    EXPECT_DOUBLE_EQ(trace.at(0).milliwatts(), 1.0);
    EXPECT_DOUBLE_EQ(trace.at(5 * kSec).milliwatts(), 2.0);
    EXPECT_DOUBLE_EQ(trace.at(10 * kSec).milliwatts(), 3.0);
    // Boundary values hold outside the knots.
    EXPECT_DOUBLE_EQ(trace.at(-5).milliwatts(), 1.0);
    EXPECT_DOUBLE_EQ(trace.at(100 * kSec).milliwatts(), 3.0);
}

TEST(InterpolatedTrace, ExactTrapezoidIntegral)
{
    InterpolatedTrace trace({{0, 0.0_mW}, {10 * kSec, 10.0_mW}});
    // Triangle: 0.5 * 10 mW * 10 s = 50 mJ.
    EXPECT_NEAR(trace.integrate(0, 10 * kSec).millijoules(), 50.0,
                1e-9);
    // Sub-interval [2, 6]: average of 2 and 6 mW over 4 s = 16 mJ.
    EXPECT_NEAR(trace.integrate(2 * kSec, 6 * kSec).millijoules(),
                16.0, 1e-9);
}

TEST(InterpolatedTrace, IntegralAdditive)
{
    InterpolatedTrace trace(
        {{0, 1.0_mW}, {kSec, 5.0_mW}, {3 * kSec, 2.0_mW}});
    const double whole = trace.integrate(0, 4 * kSec).joules();
    const double split = trace.integrate(0, 2500 * kMs).joules() +
                         trace.integrate(2500 * kMs, 4 * kSec).joules();
    EXPECT_NEAR(split, whole, 1e-15);
}

TEST(InterpolatedTrace, RejectsBadKnots)
{
    EXPECT_THROW(InterpolatedTrace({}), FatalError);
    EXPECT_THROW(InterpolatedTrace({{10, 1.0_mW}, {10, 2.0_mW}}),
                 FatalError);
}

TEST(TraceIo, InterpolatedCsvSmoothsSteps)
{
    std::istringstream in("0,0\n60,6.0\n120,0\n");
    auto trace = readCsvTraceInterpolated(in);
    // Halfway up the ramp.
    EXPECT_NEAR(trace->at(30 * kSec).milliwatts(), 3.0, 1e-9);
    // Total energy: two triangles = 6 mW * 60 s = 360 mJ.
    EXPECT_NEAR(trace->integrate(0, 120 * kSec).millijoules(), 360.0,
                1e-6);
}

// ---------------------------------------------------------------------
// Goertzel
// ---------------------------------------------------------------------

TEST(Goertzel, MatchesFftBinOnPureTone)
{
    const std::size_t n = 256;
    std::vector<double> sig(n);
    const double rate = 256.0;
    const double f = 32.0; // exact bin
    for (std::size_t i = 0; i < n; ++i)
        sig[i] = std::sin(2.0 * M_PI * f * static_cast<double>(i) /
                          rate);
    // |X(k)| of a unit sine at an exact bin is N/2.
    EXPECT_NEAR(kernels::goertzelMagnitude(sig, f, rate), 128.0, 1.0);
    // Off-tone bins see almost nothing.
    EXPECT_LT(kernels::goertzelMagnitude(sig, 100.0, rate), 2.0);
}

TEST(Goertzel, PowerRatioDetectsTone)
{
    Rng rng(5);
    const double rate = 200.0;
    std::vector<double> sig(1000);
    for (std::size_t i = 0; i < sig.size(); ++i)
        sig[i] = std::sin(2.0 * M_PI * 20.0 *
                          static_cast<double>(i) / rate) +
                 0.1 * rng.normal();
    EXPECT_GT(kernels::goertzelPowerRatio(sig, 20.0, rate), 0.8);
    EXPECT_LT(kernels::goertzelPowerRatio(sig, 55.0, rate), 0.05);
}

TEST(Goertzel, RefineLocatesFundamental)
{
    Rng rng(6);
    const double rate = 100.0;
    const double f0 = 1.37;
    const auto sig = kernels::bridgeVibration(rng, 4096, rate, f0, 0.05);
    const double found =
        kernels::goertzelRefine(sig, 1.2, 0.5, rate, 41);
    EXPECT_NEAR(found, f0, 0.05);
}

TEST(Goertzel, RejectsBadInputs)
{
    std::vector<double> sig(10, 1.0);
    EXPECT_THROW(kernels::goertzelMagnitude(sig, 60.0, 100.0), FatalError);
    EXPECT_THROW(kernels::goertzelMagnitude(sig, 1.0, 0.0), FatalError);
    EXPECT_THROW(kernels::goertzelRefine(sig, 1.0, 0.5, 100.0, 2),
                 FatalError);
    EXPECT_DOUBLE_EQ(kernels::goertzelMagnitude({}, 1.0, 100.0), 0.0);
}

// ---------------------------------------------------------------------
// CRC-16
// ---------------------------------------------------------------------

TEST(Crc16, KnownVector)
{
    // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
    const std::uint8_t data[] = {'1', '2', '3', '4', '5',
                                 '6', '7', '8', '9'};
    EXPECT_EQ(crc16(data, 9), 0x29B1);
}

TEST(Crc16, EmptyInput)
{
    EXPECT_EQ(crc16(nullptr, 0), 0xFFFF);
}

TEST(Crc16, AppendAndVerify)
{
    std::vector<std::uint8_t> frame{1, 2, 3, 4, 5};
    appendCrc16(frame);
    EXPECT_EQ(frame.size(), 7u);
    EXPECT_TRUE(checkAndStripCrc16(frame));
    EXPECT_EQ(frame, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
}

TEST(Crc16, DetectsCorruption)
{
    std::vector<std::uint8_t> frame{9, 8, 7};
    appendCrc16(frame);
    frame[1] ^= 0x40;
    const auto before = frame.size();
    EXPECT_FALSE(checkAndStripCrc16(frame));
    EXPECT_EQ(frame.size(), before); // untouched on failure
}

TEST(Crc16, ShortFrameRejected)
{
    std::vector<std::uint8_t> tiny{0x12};
    EXPECT_FALSE(checkAndStripCrc16(tiny));
}

// ---------------------------------------------------------------------
// Incidental computing
// ---------------------------------------------------------------------

TEST(Incidental, DisabledByDefault)
{
    Node::Config cfg = presets::systemNodeTemplate();
    auto node = Node(cfg, std::make_unique<ConstantTrace>(1.0_mW),
                     Rng(1));
    node.beginSlot(0, 12 * kSec);
    EXPECT_FALSE(node.canCompleteIncidental());
    node.tryWake();
    EXPECT_EQ(node.executeIncidentalTasks(1), 0);
}

TEST(Incidental, CheaperThanFullTask)
{
    Node::Config cfg = presets::systemNodeTemplate();
    cfg.enableIncidentalComputing = true;
    auto node = Node(cfg, std::make_unique<ConstantTrace>(1.0_mW),
                     Rng(1));
    node.beginSlot(0, 12 * kSec);
    EXPECT_LT(node.incidentalTaskCost().joules(),
              0.25 * node.taskCost().joules());
}

TEST(Incidental, SummarizesWhenFullTaskUnaffordable)
{
    Node::Config cfg = presets::systemNodeTemplate();
    cfg.enableIncidentalComputing = true;
    cfg.cap.initial = Energy::fromMillijoules(25.0);
    auto node = Node(cfg, std::make_unique<ConstantTrace>(
                              Power::fromMicrowatts(200.0)),
                     Rng(1));
    node.beginSlot(0, 12 * kSec);
    ASSERT_TRUE(node.tryWake());
    ASSERT_TRUE(node.samplePackage());
    EXPECT_FALSE(node.canCompleteOnePackage());
    ASSERT_TRUE(node.canCompleteIncidental());
    EXPECT_EQ(node.executeIncidentalTasks(1), 1);
    EXPECT_EQ(node.pendingPackages(), 0);
    EXPECT_EQ(node.stats().incidentalTasks.value(), 1u);
}

TEST(Incidental, SystemRecoversDiscardedSamples)
{
    auto mk = [](bool enabled) {
        ScenarioConfig cfg = presets::fig13(presets::fiosNeofog(), 1);
        cfg.horizon = 2 * kHour;
        cfg.nodeTemplate.enableIncidentalComputing = enabled;
        return cfg;
    };
    const SystemReport off = FogSystem(mk(false)).run();
    const SystemReport on = FogSystem(mk(true)).run();
    EXPECT_EQ(off.packagesIncidental, 0u);
    EXPECT_GT(on.packagesIncidental, 0u);
    // Useful output (full + incidental) strictly improves.
    EXPECT_GT(on.packagesInFog + on.packagesIncidental,
              off.packagesInFog + off.packagesIncidental);
}

} // namespace
} // namespace neofog
