/**
 * @file
 * Tests for chain self-healing (orphan scan / rejoin) and NVD4Q
 * membership updates at the system level.
 */

#include <gtest/gtest.h>

#include "fog/fog_system.hh"
#include "fog/presets.hh"

namespace neofog {
namespace {

ScenarioConfig
rainScenario()
{
    ScenarioConfig cfg = presets::fig13(presets::fiosNeofog(), 1);
    cfg.horizon = 2 * kHour;
    cfg.seed = 13;
    return cfg;
}

TEST(Healing, OrphanScansOccurWhenNodesDie)
{
    // Rain starves nodes, so liveness flaps: the chain must heal.
    FogSystem sys(rainScenario());
    const SystemReport r = sys.run();
    EXPECT_GT(r.depletionFailures, 0u);
    EXPECT_GT(r.orphanScans, 0u);
    EXPECT_GT(r.rejoins, 0u);
    // Every scan implies a death transition, every rejoin a recovery;
    // transitions alternate per node, so the counts are within each
    // other's ballpark.
    EXPECT_LT(r.orphanScans, r.rejoins + 20u);
}

TEST(Healing, StablePowerNeedsNoHealing)
{
    ScenarioConfig cfg = rainScenario();
    cfg.traceKind = TraceKind::Constant;
    cfg.meanIncome = Power::fromMilliwatts(8.0);
    FogSystem sys(cfg);
    const SystemReport r = sys.run();
    EXPECT_EQ(r.orphanScans, 0u);
    EXPECT_EQ(r.rejoins, 0u);
}

TEST(Membership, NoUpdatesByDefault)
{
    ScenarioConfig cfg = presets::fig13(presets::fiosNeofog(), 3);
    cfg.horizon = kHour;
    FogSystem sys(cfg);
    EXPECT_EQ(sys.run().membershipUpdates, 0u);
}

TEST(Membership, RotatesAtConfiguredInterval)
{
    ScenarioConfig cfg = presets::fig13(presets::fiosNeofog(), 3);
    cfg.horizon = kHour;                        // 300 slots
    cfg.membershipUpdateInterval = 10 * kMin;   // every 50 slots
    FogSystem sys(cfg);
    const SystemReport r = sys.run();
    // floor(299/50) = 5 rotation points x 10 groups.
    EXPECT_EQ(r.membershipUpdates, 5u * 10u);
}

TEST(Membership, UnmultiplexedGroupsNeverRotate)
{
    ScenarioConfig cfg = presets::fig13(presets::fiosNeofog(), 1);
    cfg.horizon = kHour;
    cfg.membershipUpdateInterval = 10 * kMin;
    FogSystem sys(cfg);
    EXPECT_EQ(sys.run().membershipUpdates, 0u);
}

TEST(Membership, RotationPreservesThroughputRoughly)
{
    // Rotations redistribute wear but should not collapse yield.
    auto mk = [](Tick interval) {
        ScenarioConfig cfg = presets::fig13(presets::fiosNeofog(), 3);
        cfg.horizon = 2 * kHour;
        cfg.membershipUpdateInterval = interval;
        return cfg;
    };
    const auto without = FogSystem(mk(0)).run();
    const auto with = FogSystem(mk(20 * kMin)).run();
    EXPECT_GT(static_cast<double>(with.totalProcessed()),
              0.7 * static_cast<double>(without.totalProcessed()));
}

} // namespace
} // namespace neofog
