/**
 * @file
 * Tests for the hop-by-hop relay mode, real-time requests, and the
 * Spendthrift frequency-scaling option.
 */

#include <gtest/gtest.h>

#include <memory>

#include "energy/power_trace.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"
#include "node/node.hh"

namespace neofog {
namespace {

using namespace neofog::literals;

ScenarioConfig
baseScenario()
{
    ScenarioConfig cfg = presets::fig10(presets::fiosNeofog(), 0);
    cfg.horizon = kHour;
    cfg.seed = 23;
    return cfg;
}

TEST(Relay, OffByDefault)
{
    FogSystem sys(baseScenario());
    const SystemReport r = sys.run();
    EXPECT_EQ(r.relayHops, 0u);
    EXPECT_EQ(r.relayDrops, 0u);
}

TEST(Relay, HopByHopChargesIntermediates)
{
    ScenarioConfig cfg = baseScenario();
    cfg.hopByHopRelay = true;
    FogSystem sys(cfg);
    const SystemReport r = sys.run();
    EXPECT_GT(r.relayHops, 0u);
    // Delivered counts survive, but relaying costs throughput.
    FogSystem direct(baseScenario());
    const SystemReport rd = direct.run();
    EXPECT_LE(r.totalProcessed(), rd.totalProcessed());
}

TEST(Relay, FunnelEffectNearSink)
{
    // Intermediates closer to the sink relay more traffic and spend
    // more radio energy than the far end of the chain.
    ScenarioConfig cfg = baseScenario();
    cfg.hopByHopRelay = true;
    cfg.meanIncome = Power::fromMilliwatts(6.0); // enough traffic
    FogSystem sys(cfg);
    sys.run();
    const double near_tx =
        sys.node(0, 1).stats().spentTx.millijoules() +
        sys.node(0, 1).stats().spentRx.millijoules();
    const double far_tx =
        sys.node(0, 9).stats().spentTx.millijoules() +
        sys.node(0, 9).stats().spentRx.millijoules();
    EXPECT_GT(near_tx, 1.5 * far_tx);
}

TEST(RealTime, OffByDefault)
{
    FogSystem sys(baseScenario());
    const SystemReport r = sys.run();
    EXPECT_EQ(r.rtRequestsServed + r.rtRequestsMissed, 0u);
}

TEST(RealTime, RequestsServedAndCounted)
{
    ScenarioConfig cfg = baseScenario();
    cfg.realTimeRequestChance = 0.05;
    FogSystem sys(cfg);
    const SystemReport r = sys.run();
    const auto total = r.rtRequestsServed + r.rtRequestsMissed;
    EXPECT_GT(total, 0u);
    EXPECT_GT(r.rtRequestsServed, 0u);
    // Served requests shipped raw: the cloud share rises.
    EXPECT_GE(r.packagesToCloud, r.rtRequestsServed);
}

TEST(RealTime, StarvedNodesMissRequests)
{
    ScenarioConfig cfg = presets::fig13(presets::fiosNeofog(), 1);
    cfg.horizon = 2 * kHour;
    cfg.realTimeRequestChance = 0.1;
    FogSystem sys(cfg);
    const SystemReport r = sys.run();
    EXPECT_GT(r.rtRequestsMissed, 0u);
}

TEST(FrequencyScaling, SlowsTasksAtLowIncome)
{
    Node::Config cfg = presets::systemNodeTemplate();
    cfg.enableFrequencyScaling = true;
    Node scaled(cfg, std::make_unique<ConstantTrace>(
                         Power::fromMicrowatts(300.0)),
                Rng(3));
    Node::Config cfg2 = presets::systemNodeTemplate();
    Node nominal(cfg2, std::make_unique<ConstantTrace>(
                           Power::fromMicrowatts(300.0)),
                 Rng(3));
    scaled.beginSlot(0, 12 * kSec);
    nominal.beginSlot(0, 12 * kSec);
    EXPECT_GT(scaled.taskComputeTime(), 2 * nominal.taskComputeTime());
}

TEST(FrequencyScaling, NoEffectAtHighIncome)
{
    Node::Config cfg = presets::systemNodeTemplate();
    cfg.enableFrequencyScaling = true;
    Node scaled(cfg, std::make_unique<ConstantTrace>(50.0_mW), Rng(3));
    Node::Config cfg2 = presets::systemNodeTemplate();
    Node nominal(cfg2, std::make_unique<ConstantTrace>(50.0_mW),
                 Rng(3));
    scaled.beginSlot(0, 12 * kSec);
    nominal.beginSlot(0, 12 * kSec);
    EXPECT_EQ(scaled.taskComputeTime(), nominal.taskComputeTime());
}

TEST(FrequencyScaling, SystemStillRuns)
{
    ScenarioConfig cfg = baseScenario();
    cfg.nodeTemplate.enableFrequencyScaling = true;
    FogSystem sys(cfg);
    const SystemReport r = sys.run();
    EXPECT_GT(r.totalProcessed(), 0u);
    EXPECT_EQ(r.wakeups + r.depletionFailures, cfg.idealPackages());
}

} // namespace
} // namespace neofog
