/**
 * @file
 * Per-policy system properties: every policy the registry knows must
 * (a) produce bit-identical reports at --threads 1/2/4 on the fig-13
 * preset widened to several chains, (b) survive a snapshot round-trip
 * of its canonical spec through the config blob, and (c) respect task
 * conservation on randomized round states.
 *
 * These properties are what lets the policy tournament
 * (bench/ablation_policies) compare policies at all: a policy whose
 * results depended on thread interleaving or whose tuning escaped
 * the fingerprint would corrupt every ranking downstream.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <numeric>

#include "balance/policy_registry.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"
#include "fog/snapshot_io.hh"
#include "sim/logging.hh"

namespace neofog {
namespace {

/** Fig-13 shape, widened so the thread sweep distributes chains. */
ScenarioConfig
policyScenario(const std::string &spec, unsigned threads)
{
    ScenarioConfig cfg = presets::fig13(presets::fiosNeofog(), 2);
    cfg.balancerPolicy = spec;
    cfg.chains = 5;
    cfg.horizon = 1 * kHour;
    cfg.seed = 4242;
    cfg.threads = threads;
    return cfg;
}

class EveryPolicy : public ::testing::TestWithParam<std::string>
{};

TEST_P(EveryPolicy, ThreadCountInvariance)
{
    SystemReport ref;
    bool first = true;
    for (const unsigned threads : {1u, 2u, 4u}) {
        FogSystem sys(policyScenario(GetParam(), threads));
        const SystemReport report = sys.run();
        if (first) {
            ref = report;
            first = false;
            EXPECT_GT(report.totalProcessed(), 0u) << GetParam();
        } else {
            EXPECT_TRUE(report == ref)
                << GetParam() << " diverged at " << threads
                << " threads";
        }
    }
}

TEST_P(EveryPolicy, CanonicalSpecSurvivesConfigBlob)
{
    // The fingerprint path: FogSystem canonicalizes, the blob stores
    // the canonical spec, and a decode hands it back unchanged.
    ScenarioConfig cfg = policyScenario(GetParam(), 1);
    FogSystem sys(cfg);
    const std::string canonical = sys.config().balancerPolicy;
    EXPECT_EQ(PolicyRegistry::instance().canonicalSpec(canonical),
              canonical);
    const ScenarioConfig decoded = deserializeScenarioBlob(
        serializeScenarioBlob(sys.config()));
    EXPECT_EQ(decoded.balancerPolicy, canonical);
}

TEST_P(EveryPolicy, ConservesTasksOnRandomStates)
{
    const auto bal = PolicyRegistry::instance().make(GetParam());
    Rng rng(31);
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t n =
            4 + static_cast<std::size_t>(rng.uniformInt(0, 12));
        std::vector<LbNodeState> states(n);
        std::vector<int> pending(n);
        for (std::size_t i = 0; i < n; ++i) {
            states[i].alive = rng.chance(0.8);
            states[i].pendingTasks =
                static_cast<int>(rng.uniformInt(0, 6));
            states[i].capacityTasks = rng.uniform(0.0, 5.0);
            states[i].taskCost = rng.uniform(0.5, 1.5);
            pending[i] = states[i].pendingTasks;
        }
        const LbOutcome out = bal->balance(states, rng);
        const auto after = out.apply(pending);
        EXPECT_EQ(std::accumulate(after.begin(), after.end(), 0),
                  std::accumulate(pending.begin(), pending.end(), 0));
        for (const int p : after)
            EXPECT_GE(p, 0);
        for (const TaskMove &m : out.moves) {
            EXPECT_TRUE(states[m.from].alive);
            EXPECT_TRUE(states[m.to].alive);
        }
    }
}

/**
 * Tuned (non-default) variants exercise the full
 * spec -> canonical -> fingerprint -> engine plumbing; a mis-tuned
 * parameter that silently fell back to its default would show up as
 * an unexpected report match in TunedConfigChangesResults below.
 */
INSTANTIATE_TEST_SUITE_P(
    Registered, EveryPolicy,
    ::testing::Values("none", "tree", "cluster", "distributed",
                      "greedy", "delay-energy", "rf-aware",
                      "distributed:neighbor_window=3",
                      "greedy:max_hops=2",
                      "delay-energy:v=0,hop_cost=0",
                      "rf-aware:alpha=1,budget=5"),
    [](const auto &suite) {
        std::string name = suite.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(PolicyTuning, RegistryCoversAllBuiltins)
{
    // The Values list above must never fall behind the registry.
    const auto names = PolicyRegistry::instance().names();
    EXPECT_GE(names.size(), 7u);
}

/** Harvesting-regime shape where balancing has tasks to move. */
ScenarioConfig
tuningScenario(const std::string &spec)
{
    ScenarioConfig cfg = presets::fig10(presets::fiosNeofog(), 0);
    cfg.balancerPolicy = spec;
    cfg.meanIncome = Power::fromMilliwatts(1.0);
    cfg.chains = 5;
    cfg.horizon = 2 * kHour;
    cfg.seed = 4242;
    return cfg;
}

TEST(PolicyTuning, TunedConfigChangesResults)
{
    // Tuning must actually reach the engine: a maximally throttled
    // delay-energy run (huge penalty weight: no shipment is ever
    // worth its energy) ships nothing, while the default tuning
    // ships tasks in the same harvesting regime.
    FogSystem throttled(
        tuningScenario("delay-energy:v=1000000"));
    EXPECT_EQ(throttled.run().tasksBalancedAway, 0u);

    FogSystem tuned(tuningScenario("delay-energy"));
    EXPECT_GT(tuned.run().tasksBalancedAway, 0u);
}

TEST(PolicyTuning, MismatchedSpecChangesFingerprint)
{
    // The loud-resume guarantee: two configs that differ only in a
    // policy parameter must fingerprint differently, while a spec
    // that only spells the defaults out fingerprints identically.
    ScenarioConfig base = policyScenario("distributed", 1);
    FogSystem a(base);

    ScenarioConfig tuned = base;
    tuned.balancerPolicy = "distributed:interrupt_chance=0.5";
    FogSystem b(tuned);
    EXPECT_NE(scenarioFingerprint(a.config()),
              scenarioFingerprint(b.config()));

    ScenarioConfig spelled = base;
    spelled.balancerPolicy =
        "distributed:interrupt_chance=0.02,max_rounds=2";
    FogSystem c(spelled);
    EXPECT_EQ(scenarioFingerprint(a.config()),
              scenarioFingerprint(c.config()));
}

} // namespace
} // namespace neofog
