/**
 * @file
 * Tests for window functions and the multi-seed experiment runner.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "fog/experiment.hh"
#include "fog/presets.hh"
#include "kernels/fft.hh"
#include "kernels/window.hh"
#include "sim/logging.hh"

namespace neofog {
namespace {

using kernels::WindowKind;

TEST(Window, RectangularIsUnity)
{
    const auto w = kernels::makeWindow(WindowKind::Rectangular, 16);
    for (double v : w)
        EXPECT_DOUBLE_EQ(v, 1.0);
    EXPECT_DOUBLE_EQ(kernels::coherentGain(WindowKind::Rectangular, 16),
                     1.0);
}

TEST(Window, HannEndpointsZeroPeakOne)
{
    const auto w = kernels::makeWindow(WindowKind::Hann, 65);
    EXPECT_NEAR(w.front(), 0.0, 1e-12);
    EXPECT_NEAR(w.back(), 0.0, 1e-12);
    EXPECT_NEAR(w[32], 1.0, 1e-12);
}

TEST(Window, KnownCoherentGains)
{
    // Asymptotic coherent gains: Hann 0.5, Hamming 0.54, Blackman 0.42.
    EXPECT_NEAR(kernels::coherentGain(WindowKind::Hann, 4096), 0.5,
                0.001);
    EXPECT_NEAR(kernels::coherentGain(WindowKind::Hamming, 4096), 0.54,
                0.001);
    EXPECT_NEAR(kernels::coherentGain(WindowKind::Blackman, 4096), 0.42,
                0.001);
}

TEST(Window, SymmetricCoefficients)
{
    for (WindowKind kind :
         {WindowKind::Hann, WindowKind::Hamming, WindowKind::Blackman}) {
        const auto w = kernels::makeWindow(kind, 33);
        for (std::size_t i = 0; i < w.size(); ++i)
            EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
    }
}

TEST(Window, SingleSampleWindowIsOne)
{
    EXPECT_DOUBLE_EQ(
        kernels::windowCoefficient(WindowKind::Blackman, 0, 1), 1.0);
}

TEST(Window, ReducesLeakageForOffBinTone)
{
    // A tone midway between bins smears badly without a window; the
    // Hann window concentrates it.
    const std::size_t n = 256;
    std::vector<double> sig(n);
    const double freq_bins = 20.5; // worst case: half-bin offset
    for (std::size_t i = 0; i < n; ++i)
        sig[i] = std::sin(2.0 * M_PI * freq_bins *
                          static_cast<double>(i) / n);

    auto leakage = [&](const std::vector<double> &s) {
        const auto mags = kernels::magnitudeSpectrum(s);
        // Energy far from the tone (10+ bins away) relative to total.
        double far = 0.0, total = 0.0;
        for (std::size_t k = 1; k < mags.size(); ++k) {
            const double e = mags[k] * mags[k];
            total += e;
            if (std::abs(static_cast<double>(k) - freq_bins) > 10.0)
                far += e;
        }
        return far / total;
    };

    const double raw = leakage(sig);
    const double windowed =
        leakage(kernels::applyWindow(sig, WindowKind::Hann));
    EXPECT_LT(windowed, raw * 0.1);
}

TEST(Experiment, AggregatesAcrossSeeds)
{
    ScenarioConfig cfg = presets::fig10(presets::fiosNeofog(), 0);
    cfg.horizon = 30 * kMin;
    const AggregateReport agg = ExperimentRunner::runSeeds(
        cfg, {.runs = 5, .baseSeed = 100});
    EXPECT_EQ(agg.runs, 5);
    EXPECT_EQ(agg.reports.size(), 5u);
    EXPECT_EQ(agg.stat("total_processed").count(), 5u);
    // Different seeds produce spread.
    EXPECT_GT(agg.stat("total_processed").stddev(), 0.0);
    // Yield stays a fraction.
    EXPECT_GT(agg.stat("yield").mean(), 0.0);
    EXPECT_LT(agg.stat("yield").max(), 1.0 + 1e-9);
}

TEST(Experiment, PrintIncludesFields)
{
    ScenarioConfig cfg = presets::fig10(presets::fiosNeofog(), 0);
    cfg.horizon = 20 * kMin;
    const AggregateReport agg = ExperimentRunner::runSeeds(
        cfg, {.runs = 2, .baseSeed = 7});
    std::ostringstream oss;
    agg.print(oss, "exp");
    EXPECT_NE(oss.str().find("total processed"), std::string::npos);
    EXPECT_NE(oss.str().find("+-"), std::string::npos);
}

TEST(Experiment, RejectsZeroRuns)
{
    ScenarioConfig cfg = presets::fig10(presets::fiosNeofog(), 0);
    EXPECT_THROW(ExperimentRunner::runSeeds(cfg, {.runs = 0}),
                 FatalError);
}

TEST(Experiment, CompareTotalsShowsNeofogAdvantage)
{
    ScenarioConfig vp = presets::fig10(presets::nosVp(), 0);
    ScenarioConfig neo = presets::fig10(presets::fiosNeofog(), 0);
    vp.horizon = neo.horizon = kHour;
    const ScalarStat ratio = ExperimentRunner::compareTotals(
        vp, neo, {.runs = 4, .baseSeed = 50});
    EXPECT_EQ(ratio.count(), 4u);
    EXPECT_GT(ratio.mean(), 1.5);
    EXPECT_GT(ratio.min(), 1.0);
}

} // namespace
} // namespace neofog
