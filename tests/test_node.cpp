/**
 * @file
 * Tests for the Node slot-level state machine.
 */

#include <gtest/gtest.h>

#include <memory>

#include "energy/power_trace.hh"
#include "node/node.hh"
#include "sim/logging.hh"

namespace neofog {
namespace {

using namespace neofog::literals;

constexpr Tick kSlot = 12 * kSec;

Node::Config
baseConfig(OperatingMode mode)
{
    Node::Config cfg;
    cfg.mode = mode;
    cfg.cap.capacity = 250.0_mJ;
    cfg.cap.initial = 125.0_mJ;
    cfg.cap.leakage = Power::fromMicrowatts(15.0);
    cfg.sensor = sensors::lis331dlh();
    cfg.processorMhz = 50.0;
    cfg.rawPackageBytes = 256;
    cfg.compressedPackageBytes = 16;
    cfg.samplesPerPackage = 64;
    cfg.fogInstructionsPerPackage = 20'000'000;
    return cfg;
}

std::unique_ptr<Node>
makeNode(OperatingMode mode, Power income,
         Node::Config cfg_override = Node::Config{},
         bool use_override = false)
{
    const Node::Config cfg =
        use_override ? cfg_override : baseConfig(mode);
    return std::make_unique<Node>(
        cfg, std::make_unique<ConstantTrace>(income), Rng(7));
}

TEST(Node, ModeNames)
{
    EXPECT_EQ(operatingModeName(OperatingMode::NosVp), "NOS-VP");
    EXPECT_EQ(operatingModeName(OperatingMode::NosNvp), "NOS-NVP");
    EXPECT_EQ(operatingModeName(OperatingMode::FiosNvMote),
              "FIOS-NV-mote");
}

TEST(Node, RequiresTrace)
{
    EXPECT_THROW(
        Node(baseConfig(OperatingMode::NosVp), nullptr, Rng(1)),
        FatalError);
}

TEST(Node, BeginSlotBanksIncome)
{
    auto node = makeNode(OperatingMode::NosNvp, 5.0_mW);
    const Energy before = node->stored();
    node->beginSlot(0, kSlot);
    // NOS front end: 5 mW x 12 s x 0.8 x 0.7 minus RTC share & leakage.
    const double banked =
        node->stored().millijoules() - before.millijoules();
    EXPECT_NEAR(banked, 5.0 * 12.0 * 0.8 * 0.7 * 0.98, 2.0);
}

TEST(Node, FiosIncomeGoesToDirectBudgetFirst)
{
    auto node = makeNode(OperatingMode::FiosNvMote, 5.0_mW);
    const Energy before = node->stored();
    node->beginSlot(0, kSlot);
    // The slot's income is held as direct budget, not banked yet
    // (minus leakage the cap should be unchanged).
    EXPECT_NEAR(node->stored().millijoules(), before.millijoules(), 0.5);
    // Unused direct budget banks at the next slot boundary.
    node->beginSlot(kSlot, kSlot);
    EXPECT_GT(node->stored().millijoules(), before.millijoules() + 20.0);
}

TEST(Node, WakeCountsAndCosts)
{
    auto node = makeNode(OperatingMode::NosNvp, 2.0_mW);
    node->beginSlot(0, kSlot);
    EXPECT_TRUE(node->tryWake());
    EXPECT_TRUE(node->awake());
    EXPECT_EQ(node->stats().wakeups.value(), 1u);
    EXPECT_EQ(node->stats().depletionFailures.value(), 0u);
}

TEST(Node, DepletedNodeFailsToWake)
{
    Node::Config cfg = baseConfig(OperatingMode::NosNvp);
    cfg.cap.initial = Energy::zero();
    auto node = makeNode(OperatingMode::NosNvp,
                         Power::fromMicrowatts(1.0), cfg, true);
    node->beginSlot(0, kSlot);
    EXPECT_FALSE(node->tryWake());
    EXPECT_EQ(node->stats().depletionFailures.value(), 1u);
    EXPECT_FALSE(node->awake());
}

TEST(Node, VpActivationCheaperThanNvp)
{
    auto vp = makeNode(OperatingMode::NosVp, 1.0_mW);
    auto nvp = makeNode(OperatingMode::NosNvp, 1.0_mW);
    // NVP modes gate on wake+sample+task/4 (the higher activation
    // threshold of §5.2.1).
    EXPECT_LT(vp->activationCost().joules(),
              nvp->activationCost().joules());
}

TEST(Node, ClassifyLaddersWithStoredEnergy)
{
    Node::Config cfg = baseConfig(OperatingMode::NosNvp);
    cfg.cap.initial = Energy::zero();
    auto node = makeNode(OperatingMode::NosNvp,
                         Power::fromMicrowatts(1.0), cfg, true);
    node->beginSlot(0, kSlot);
    EXPECT_EQ(node->classify(), EnergyClass::Dead);

    Node::Config cfg2 = baseConfig(OperatingMode::NosNvp);
    cfg2.cap.initial = 20.0_mJ;
    auto node2 = makeNode(OperatingMode::NosNvp,
                          Power::fromMicrowatts(1.0), cfg2, true);
    node2->beginSlot(0, kSlot);
    EXPECT_EQ(node2->classify(), EnergyClass::Awake);

    Node::Config cfg3 = baseConfig(OperatingMode::NosNvp);
    cfg3.cap.initial = 110.0_mJ;
    auto node3 = makeNode(OperatingMode::NosNvp,
                          Power::fromMicrowatts(1.0), cfg3, true);
    node3->beginSlot(0, kSlot);
    EXPECT_EQ(node3->classify(), EnergyClass::Ready);

    Node::Config cfg4 = baseConfig(OperatingMode::NosNvp);
    cfg4.cap.initial = 250.0_mJ;
    auto node4 = makeNode(OperatingMode::NosNvp,
                          Power::fromMicrowatts(1.0), cfg4, true);
    node4->beginSlot(0, kSlot);
    EXPECT_EQ(node4->classify(), EnergyClass::Extra);
}

TEST(Node, SamplePackageFillsQueue)
{
    auto node = makeNode(OperatingMode::NosNvp, 2.0_mW);
    node->beginSlot(0, kSlot);
    ASSERT_TRUE(node->tryWake());
    EXPECT_TRUE(node->samplePackage());
    EXPECT_EQ(node->pendingPackages(), 1);
    EXPECT_EQ(node->stats().packagesSampled.value(), 1u);
}

TEST(Node, ExecuteTasksConsumesEnergyAndQueue)
{
    auto node = makeNode(OperatingMode::FiosNvMote, 8.0_mW);
    node->beginSlot(0, kSlot);
    ASSERT_TRUE(node->tryWake());
    ASSERT_TRUE(node->samplePackage());
    const Energy before = node->stored();
    const int done = node->executeTasks(1);
    EXPECT_EQ(done, 1);
    EXPECT_EQ(node->pendingPackages(), 0);
    EXPECT_GT(node->stats().spentCompute.joules(), 0.0);
    // FIOS compute draws the direct budget first; the cap should not
    // have dropped by the full task cost.
    const double drop =
        before.millijoules() - node->stored().millijoules();
    EXPECT_LT(drop, node->taskCost().millijoules());
}

TEST(Node, ExecuteTasksBoundedBySlotTime)
{
    auto node = makeNode(OperatingMode::FiosNvMote, 50.0_mW);
    node->beginSlot(0, kSlot);
    ASSERT_TRUE(node->tryWake());
    node->samplePackage();
    node->addPendingPackages(10);
    // 20M instructions at 50 MHz/12cpi = 4.8 s per task: at most 2 fit
    // in a 12 s slot.
    const int done = node->executeTasks(10);
    EXPECT_LE(done, 2);
    EXPECT_GE(done, 1);
}

TEST(Node, PackageDeadlineExpiresStaleWork)
{
    Node::Config cfg = baseConfig(OperatingMode::NosNvp);
    cfg.packageDeadlineSlots = 2;
    auto node = makeNode(OperatingMode::NosNvp, 2.0_mW, cfg, true);
    node->beginSlot(0, kSlot);
    ASSERT_TRUE(node->tryWake());
    ASSERT_TRUE(node->samplePackage());
    EXPECT_EQ(node->pendingPackages(), 1);
    // One slot later it is still fresh...
    node->beginSlot(kSlot, kSlot);
    EXPECT_EQ(node->pendingPackages(), 1);
    // ...two slots later it expired.
    node->beginSlot(2 * kSlot, kSlot);
    EXPECT_EQ(node->pendingPackages(), 0);
    EXPECT_GE(node->stats().samplesDiscarded.value(), 1u);
}

TEST(Node, TransmitPaysInitOncePerSlot)
{
    auto node = makeNode(OperatingMode::FiosNvMote, 10.0_mW);
    node->beginSlot(0, kSlot);
    ASSERT_TRUE(node->tryWake());
    const Energy before = node->stored();
    ASSERT_TRUE(node->payTransmit(16));
    const Energy after_first = node->stored();
    ASSERT_TRUE(node->payTransmit(16));
    const Energy after_second = node->stored();
    // Second TX is cheaper: no init.
    EXPECT_LT(before.joules() - after_first.joules() -
                  (after_first.joules() - after_second.joules()),
              before.joules() - after_first.joules());
    EXPECT_GT(node->stats().spentTx.joules(), 0.0);
}

TEST(Node, TransmitFailsWhenBroke)
{
    Node::Config cfg = baseConfig(OperatingMode::NosVp);
    cfg.cap.initial = 1.0_mJ;
    auto node = makeNode(OperatingMode::NosVp,
                         Power::fromMicrowatts(10.0), cfg, true);
    node->beginSlot(0, kSlot);
    ASSERT_TRUE(node->tryWake()); // VP boot is cheap
    // Full VP software-RF TX needs tens of mJ.
    EXPECT_FALSE(node->payTransmit(256));
}

TEST(Node, VpDiscardsPendingOnPowerOff)
{
    auto node = makeNode(OperatingMode::NosVp, 20.0_mW);
    node->beginSlot(0, kSlot);
    ASSERT_TRUE(node->tryWake());
    node->samplePackage();
    EXPECT_EQ(node->pendingPackages(), 1);
    const int dropped = node->discardPendingPackages();
    EXPECT_EQ(dropped, 1);
    EXPECT_EQ(node->pendingPackages(), 0);
}

TEST(Node, SpareCapacityGrowsWithEnergy)
{
    Node::Config rich_cfg = baseConfig(OperatingMode::FiosNvMote);
    rich_cfg.cap.initial = 250.0_mJ;
    auto rich = makeNode(OperatingMode::FiosNvMote, 10.0_mW, rich_cfg,
                         true);
    Node::Config poor_cfg = baseConfig(OperatingMode::FiosNvMote);
    poor_cfg.cap.initial = 5.0_mJ;
    auto poor = makeNode(OperatingMode::FiosNvMote,
                         Power::fromMicrowatts(100.0), poor_cfg, true);
    rich->beginSlot(0, kSlot);
    poor->beginSlot(0, kSlot);
    EXPECT_GT(rich->spareTaskCapacity(), poor->spareTaskCapacity());
    // The poor node offers at most a sliver (its tiny unused direct
    // budget); nowhere near a whole task.
    EXPECT_LT(poor->spareTaskCapacity(), 0.1);
}

TEST(Node, RelativeTaskCostReflectsSpendthrift)
{
    auto low = makeNode(OperatingMode::FiosNvMote,
                        Power::fromMicrowatts(200.0));
    auto high = makeNode(OperatingMode::FiosNvMote, 20.0_mW);
    low->beginSlot(0, kSlot);
    high->beginSlot(0, kSlot);
    EXPECT_LT(low->relativeTaskCost(), high->relativeTaskCost());
    auto vp = makeNode(OperatingMode::NosVp, 1.0_mW);
    vp->beginSlot(0, kSlot);
    EXPECT_DOUBLE_EQ(vp->relativeTaskCost(), 1.0);
}

TEST(Node, EnergyPointRecording)
{
    auto node = makeNode(OperatingMode::NosNvp, 1.0_mW);
    node->beginSlot(0, kSlot);
    node->recordEnergyPoint(0);
    node->beginSlot(kSlot, kSlot);
    node->recordEnergyPoint(kSlot);
    EXPECT_EQ(node->stats().storedEnergyMj.size(), 2u);
}

TEST(Node, GapAccrualForMultiplexedClones)
{
    // A clone sleeping through 2 slots banks the gap income when its
    // turn comes.
    auto node = makeNode(OperatingMode::FiosNvMote, 5.0_mW);
    node->beginSlot(0, kSlot);
    const Energy after_first = node->stored();
    // Skip two slots; wake at slot 3.
    node->beginSlot(3 * kSlot, kSlot);
    const double gained =
        node->stored().millijoules() - after_first.millijoules();
    // 3 slots' income routed through the charge path (one unused direct
    // budget + two gap slots), roughly 3 x 5mW x 12s x 0.56 = 100 mJ,
    // capped by capacity.
    EXPECT_GT(gained, 50.0);
}

TEST(Node, PackageTxCostLowerForNvrf)
{
    auto fios = makeNode(OperatingMode::FiosNvMote, 2.0_mW);
    auto nvp = makeNode(OperatingMode::NosNvp, 2.0_mW);
    auto vp = makeNode(OperatingMode::NosVp, 2.0_mW);
    fios->beginSlot(0, kSlot);
    nvp->beginSlot(0, kSlot);
    vp->beginSlot(0, kSlot);
    EXPECT_LT(fios->packageTxCost().joules(),
              nvp->packageTxCost().joules());
    EXPECT_LT(nvp->packageTxCost().joules(),
              vp->packageTxCost().joules());
}

TEST(Node, SlotCostOrdering)
{
    // The per-package slot cost explains the paper's system ordering:
    // FIOS < NOS-NVP < NOS-VP.
    auto fios = makeNode(OperatingMode::FiosNvMote, 2.0_mW);
    auto nvp = makeNode(OperatingMode::NosNvp, 2.0_mW);
    auto vp = makeNode(OperatingMode::NosVp, 2.0_mW);
    fios->beginSlot(0, kSlot);
    nvp->beginSlot(0, kSlot);
    vp->beginSlot(0, kSlot);
    EXPECT_LT(fios->slotCost().joules(), nvp->slotCost().joules());
    EXPECT_LT(nvp->slotCost().joules(), vp->slotCost().joules());
}

} // namespace
} // namespace neofog
