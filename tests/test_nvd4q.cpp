/**
 * @file
 * Tests for NVD4Q node virtualization (Algorithm 2).
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/logging.hh"
#include "virt/nvd4q.hh"

namespace neofog {
namespace {

TEST(CloneGroup, RotationCoversAllMembers)
{
    CloneGroup group(0, {10, 11, 12});
    std::set<std::size_t> seen;
    for (std::int64_t s = 0; s < 3; ++s)
        seen.insert(group.memberForSlot(s));
    EXPECT_EQ(seen.size(), 3u);
    // Period 3.
    EXPECT_EQ(group.memberForSlot(0), group.memberForSlot(3));
}

TEST(CloneGroup, ExactlyOneMemberPerSlot)
{
    CloneGroup group(1, {0, 1, 2, 3});
    for (std::int64_t s = 0; s < 20; ++s) {
        int active = 0;
        for (std::size_t m : group.members()) {
            if (group.memberForSlot(s) == m)
                ++active;
        }
        EXPECT_EQ(active, 1);
    }
}

TEST(CloneGroup, PhasesUniqueWithinGroup)
{
    CloneGroup group(0, {5, 6, 7, 8});
    std::set<int> phases;
    for (std::size_t m : group.members())
        phases.insert(group.phaseOf(m));
    EXPECT_EQ(phases.size(), 4u);
}

TEST(CloneGroup, SingleMemberAlwaysActive)
{
    CloneGroup group(0, {42});
    EXPECT_EQ(group.multiplier(), 1);
    for (std::int64_t s = 0; s < 5; ++s)
        EXPECT_EQ(group.memberForSlot(s), 42u);
}

TEST(CloneGroup, MembershipRotationShiftsSchedule)
{
    CloneGroup group(0, {1, 2, 3});
    const std::size_t before = group.memberForSlot(0);
    group.rotateMembership();
    const std::size_t after = group.memberForSlot(0);
    EXPECT_NE(before, after);
    EXPECT_TRUE(group.contains(before));
    EXPECT_TRUE(group.contains(after));
}

TEST(CloneGroup, ContainsAndErrors)
{
    CloneGroup group(3, {9, 10});
    EXPECT_TRUE(group.contains(9));
    EXPECT_FALSE(group.contains(11));
    EXPECT_THROW(group.phaseOf(11), FatalError);
    EXPECT_THROW(CloneGroup(0, {}), FatalError);
}

TEST(Nvd4q, FormGroupsAttachesToNearestAnchor)
{
    Rng rng(5);
    const int density = 3;
    const std::size_t n_logical = 6;
    const ChainMesh mesh = ChainMesh::makeDenseChain(
        n_logical, density, 20.0, 4.0, rng);
    const auto groups =
        Nvd4qManager::formGroups(mesh, n_logical, density);
    ASSERT_EQ(groups.size(), n_logical);

    // Every physical node belongs to exactly one group.
    std::set<std::size_t> assigned;
    for (const auto &g : groups) {
        for (std::size_t m : g.members()) {
            EXPECT_TRUE(assigned.insert(m).second);
        }
    }
    EXPECT_EQ(assigned.size(), mesh.size());

    // Scatter (4 m) is far smaller than spacing (20 m), so each clone
    // lands at its own anchor's group.
    for (std::size_t i = 0; i < groups.size(); ++i) {
        EXPECT_EQ(groups[i].members().size(),
                  static_cast<std::size_t>(density));
        EXPECT_EQ(groups[i].members().front(),
                  i * static_cast<std::size_t>(density));
    }
}

TEST(Nvd4q, FormGroupsRejectsMismatch)
{
    Rng rng(6);
    const ChainMesh mesh = ChainMesh::makeLinear(10, 10.0);
    EXPECT_THROW(Nvd4qManager::formGroups(mesh, 4, 3), FatalError);
}

TEST(Nvd4q, JoinCostClonesState)
{
    NvRfController source;
    source.configure();
    source.state().channel = 21;
    source.state().associatedDevList = {1, 2};

    NvRfController joiner;
    const JoinCost cost = Nvd4qManager::joinCost(joiner, source);
    EXPECT_GT(cost.duration, 0);
    EXPECT_GT(cost.energy.millijoules(), 0.0);
    EXPECT_TRUE(joiner.configured());
    EXPECT_EQ(joiner.state().channel, 21);
}

TEST(Nvd4q, JoinCostIsMillisecondScale)
{
    // The whole Algorithm 2 join is tens of milliseconds — far cheaper
    // than a software network (re)construction (hundreds of ms).
    NvRfController source;
    source.configure();
    NvRfController joiner;
    const JoinCost cost = Nvd4qManager::joinCost(joiner, source);
    EXPECT_LT(cost.duration, ticksFromMs(100.0));
}

TEST(Nvd4q, GroupQosCountsServedSlots)
{
    CloneGroup group(0, {0, 1});
    // Member 0 always serves; member 1 never does.
    std::vector<std::vector<bool>> served = {
        std::vector<bool>(10, true),
        std::vector<bool>(10, false),
    };
    EXPECT_NEAR(Nvd4qManager::groupQos(group, 10, served), 0.5, 1e-12);
}

TEST(Nvd4q, GroupQosPerfectAndZero)
{
    CloneGroup group(0, {0, 1, 2});
    std::vector<std::vector<bool>> all(3, std::vector<bool>(9, true));
    EXPECT_DOUBLE_EQ(Nvd4qManager::groupQos(group, 9, all), 1.0);
    std::vector<std::vector<bool>> none(3, std::vector<bool>(9, false));
    EXPECT_DOUBLE_EQ(Nvd4qManager::groupQos(group, 9, none), 0.0);
}

} // namespace
} // namespace neofog
