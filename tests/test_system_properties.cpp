/**
 * @file
 * Property-style integration sweeps over the full system: invariants
 * that must hold for every combination of mode, trace, balancer, and
 * multiplexing, plus a long-horizon endurance run.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "fog/fog_system.hh"
#include "fog/presets.hh"

namespace neofog {
namespace {

using SweepParam =
    std::tuple<OperatingMode, TraceKind, const char *, int>;

class SystemSweep : public ::testing::TestWithParam<SweepParam>
{
  protected:
    ScenarioConfig
    makeConfig() const
    {
        const auto [mode, trace, policy, mux] = GetParam();
        ScenarioConfig cfg;
        cfg.nodesPerChain = 6;
        cfg.chains = 1;
        cfg.horizon = 40 * kMin;
        cfg.slotInterval = 12 * kSec;
        cfg.traceKind = trace;
        cfg.meanIncome = Power::fromMilliwatts(
            trace == TraceKind::RainLow ? 0.75 : 2.6);
        cfg.mode = mode;
        cfg.balancerPolicy = policy;
        cfg.multiplexing = mux;
        cfg.nodeTemplate = presets::systemNodeTemplate();
        cfg.seed = 31;
        return cfg;
    }
};

TEST_P(SystemSweep, ReportInvariantsHold)
{
    const ScenarioConfig cfg = makeConfig();
    FogSystem sys(cfg);
    const SystemReport r = sys.run();

    // Slot conservation: every logical slot wakes a clone or fails.
    EXPECT_EQ(r.wakeups + r.depletionFailures, cfg.idealPackages());
    // Data conservation: output bounded by captures.
    EXPECT_LE(r.totalProcessed() + r.packagesIncidental,
              r.packagesSampled);
    EXPECT_LE(r.packagesSampled, cfg.idealPackages());
    // VP never fog-processes.
    if (cfg.mode == OperatingMode::NosVp) {
        EXPECT_EQ(r.packagesInFog, 0u);
        EXPECT_EQ(r.tasksBalancedAway, 0u);
    }
    // The no-op balancer neither moves nor messages.
    if (std::string(std::get<2>(GetParam())) == "none") {
        EXPECT_EQ(r.tasksBalancedAway, 0u);
        EXPECT_EQ(r.lbMessages, 0u);
    }
}

TEST_P(SystemSweep, PerNodeEnergyConservation)
{
    const ScenarioConfig cfg = makeConfig();
    FogSystem sys(cfg);
    sys.run();
    const double initial_mj =
        cfg.nodeTemplate.cap.initial.millijoules();
    for (std::size_t i = 0; i < sys.physicalPerChain(); ++i) {
        const NodeStats &st = sys.node(0, i).stats();
        const double spent = st.spentCompute.millijoules() +
                             st.spentTx.millijoules() +
                             st.spentRx.millijoules() +
                             st.spentSample.millijoules() +
                             st.spentWake.millijoules();
        EXPECT_LE(spent,
                  st.harvestedTotal.millijoules() + initial_mj + 1e-6);
    }
}

TEST_P(SystemSweep, DeterministicAcrossRuns)
{
    const ScenarioConfig cfg = makeConfig();
    const SystemReport a = FogSystem(cfg).run();
    const SystemReport b = FogSystem(cfg).run();
    EXPECT_EQ(a.totalProcessed(), b.totalProcessed());
    EXPECT_EQ(a.packagesSampled, b.packagesSampled);
    EXPECT_EQ(a.tasksBalancedAway, b.tasksBalancedAway);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SystemSweep,
    ::testing::Combine(
        ::testing::Values(OperatingMode::NosVp, OperatingMode::NosNvp,
                          OperatingMode::FiosNvMote),
        ::testing::Values(TraceKind::ForestIndependent,
                          TraceKind::BridgeDependent,
                          TraceKind::RainLow),
        ::testing::Values("none", "tree", "distributed"),
        ::testing::Values(1, 3)));

TEST(SystemEndurance, ThreeDayRunStaysSane)
{
    // Multi-day horizon: the diurnal envelope includes nights, so the
    // system must survive long zero-income stretches and recover.
    ScenarioConfig cfg = presets::fig10(presets::fiosNeofog(), 0);
    cfg.horizon = 3 * 24 * kHour;
    cfg.seed = 77;
    FogSystem sys(cfg);
    const SystemReport r = sys.run();
    EXPECT_EQ(r.wakeups + r.depletionFailures, cfg.idealPackages());
    EXPECT_GT(r.totalProcessed(), 0u);
    // Night slots produce nothing, so yield is well below daytime
    // levels but the run completes and the accounting balances.
    EXPECT_LE(r.totalProcessed(), r.packagesSampled);
    for (std::size_t i = 0; i < 10; ++i) {
        const auto &series = sys.node(0, i).stats().storedEnergyMj;
        for (const auto &pt : series.points())
            EXPECT_GE(pt.value, -1e-9);
    }
}

TEST(SystemStats, DumpContainsPerNodeCounters)
{
    ScenarioConfig cfg = presets::fig10(presets::fiosNeofog(), 0);
    cfg.horizon = 30 * kMin;
    FogSystem sys(cfg);
    sys.run();
    std::ostringstream oss;
    sys.dumpStats(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("chain0.node0.wakeups"), std::string::npos);
    EXPECT_NE(out.find("chain0.node9.packagesInFog"),
              std::string::npos);
    EXPECT_NE(out.find("storedEnergyMj.points"), std::string::npos);
}

} // namespace
} // namespace neofog
