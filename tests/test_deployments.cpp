/**
 * @file
 * Tests for the Table 1 deployment catalog.
 */

#include <gtest/gtest.h>

#include <set>

#include "fog/deployments.hh"
#include "fog/fog_system.hh"

namespace neofog {
namespace {

TEST(Deployments, CatalogCoversTable1)
{
    std::set<std::string> names;
    for (DeploymentKind kind : kAllDeployments) {
        const DeploymentSpec spec = deploymentSpec(kind);
        EXPECT_FALSE(spec.name.empty());
        EXPECT_FALSE(spec.energySources.empty());
        EXPECT_FALSE(spec.sensors.empty());
        EXPECT_GT(spec.typicalNodes, 0u);
        EXPECT_GT(spec.typicalIncome.watts(), 0.0);
        names.insert(spec.name);
    }
    EXPECT_EQ(names.size(), 5u);
}

TEST(Deployments, BridgeRowMatchesPaper)
{
    const auto spec =
        deploymentSpec(DeploymentKind::BridgeHealthMonitor);
    EXPECT_EQ(spec.topology, TopologyKind::ZigbeeChainMesh);
    EXPECT_EQ(spec.app, AppKind::BridgeHealth);
    EXPECT_EQ(spec.transmittedData, "Raw sampled data");
    ASSERT_EQ(spec.energySources.size(), 2u);
    EXPECT_EQ(spec.energySources[0], EnergySource::Solar);
}

TEST(Deployments, CameraIsRfPoweredBackscatter)
{
    const auto spec = deploymentSpec(DeploymentKind::RfPoweredCamera);
    EXPECT_EQ(spec.topology, TopologyKind::PointToPointBackscatter);
    // WispCam harvests microwatts, far below the solar deployments.
    EXPECT_LT(spec.typicalIncome.watts(),
              deploymentSpec(DeploymentKind::BridgeHealthMonitor)
                  .typicalIncome.watts());
}

TEST(Deployments, DisplayNamesComplete)
{
    for (EnergySource s :
         {EnergySource::Solar, EnergySource::Piezoelectric,
          EnergySource::Thermal, EnergySource::Rf, EnergySource::Wifi})
        EXPECT_NE(energySourceName(s), "?");
    for (TopologyKind t :
         {TopologyKind::ZigbeeChainMesh, TopologyKind::Star,
          TopologyKind::StarBusOrTree,
          TopologyKind::PointToPointBackscatter})
        EXPECT_NE(topologyName(t), "?");
}

TEST(Deployments, ScenariosAreRunnable)
{
    for (DeploymentKind kind : kAllDeployments) {
        ScenarioConfig cfg =
            deploymentScenario(kind, presets::fiosNeofog(), 3);
        cfg.horizon = 30 * kMin; // keep the sweep quick
        FogSystem sys(cfg);
        const SystemReport r = sys.run();
        EXPECT_EQ(r.wakeups + r.depletionFailures, cfg.idealPackages())
            << deploymentSpec(kind).name;
    }
}

TEST(Deployments, ScenarioUsesDeploymentSensor)
{
    const ScenarioConfig cfg = deploymentScenario(
        DeploymentKind::RailwayTempMonitor, presets::nosVp());
    EXPECT_EQ(cfg.nodeTemplate.sensor.partName, "TMP101");
    EXPECT_EQ(cfg.mode, OperatingMode::NosVp);
    EXPECT_EQ(cfg.nodesPerChain, 12u);
}

TEST(Deployments, NeofogBeatsVpOnBridgeDeployment)
{
    auto run = [](const presets::SystemUnderTest &sut) {
        ScenarioConfig cfg = deploymentScenario(
            DeploymentKind::BridgeHealthMonitor, sut, 9);
        cfg.horizon = kHour;
        return FogSystem(cfg).run().totalProcessed();
    };
    EXPECT_GT(run(presets::fiosNeofog()), run(presets::nosVp()));
}

} // namespace
} // namespace neofog
