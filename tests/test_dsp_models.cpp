/**
 * @file
 * Tests for the AR model, pattern matcher, signal generators,
 * volumetric reconstruction, and bridge strength pipeline.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "kernels/ar_model.hh"
#include "kernels/bridge_model.hh"
#include "kernels/compress.hh"
#include "kernels/pattern_match.hh"
#include "kernels/signal_gen.hh"
#include "kernels/volumetric.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace neofog::kernels {
namespace {

// ---------------------------------------------------------------------
// AR model
// ---------------------------------------------------------------------

TEST(ArModel, AutocorrelationLagZeroIsPower)
{
    const std::vector<double> x{1.0, -1.0, 1.0, -1.0};
    const auto r = autocorrelation(x, 1);
    EXPECT_NEAR(r[0], 1.0, 1e-12);
    EXPECT_NEAR(r[1], -0.75, 1e-12); // 3 products of -1 over n=4
}

TEST(ArModel, RecoversAr1Coefficient)
{
    // x[t] = 0.8 x[t-1] + e.
    Rng rng(1);
    std::vector<double> x(20000);
    double prev = 0.0;
    for (auto &v : x) {
        v = 0.8 * prev + rng.normal();
        prev = v;
    }
    const ArFit fit = fitAr(x, 1);
    EXPECT_NEAR(fit.coefficients[0], 0.8, 0.03);
    EXPECT_NEAR(fit.noiseVariance, 1.0, 0.1);
}

TEST(ArModel, RecoversAr2Coefficients)
{
    Rng rng(2);
    std::vector<double> x(40000);
    double p1 = 0.0, p2 = 0.0;
    for (auto &v : x) {
        v = 0.5 * p1 - 0.3 * p2 + rng.normal();
        p2 = p1;
        p1 = v;
    }
    const ArFit fit = fitAr(x, 2);
    EXPECT_NEAR(fit.coefficients[0], 0.5, 0.05);
    EXPECT_NEAR(fit.coefficients[1], -0.3, 0.05);
}

TEST(ArModel, ZeroSignalDegenerates)
{
    const std::vector<double> x(100, 0.0);
    const ArFit fit = fitAr(x, 3);
    for (double c : fit.coefficients)
        EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(ArModel, TooFewSamplesFatal)
{
    EXPECT_THROW(fitAr({1.0, 2.0}, 5), FatalError);
}

TEST(ArModel, DistanceProperties)
{
    const std::vector<double> a{1.0, 2.0};
    const std::vector<double> b{4.0, 6.0};
    EXPECT_DOUBLE_EQ(arDistance(a, a), 0.0);
    EXPECT_DOUBLE_EQ(arDistance(a, b), 5.0);
    EXPECT_DOUBLE_EQ(arDistance(a, b), arDistance(b, a));
}

TEST(ArModel, DamageIndicatorNearZeroForSameProcess)
{
    Rng rng(3);
    const auto healthy = bridgeVibration(rng, 4096, 100.0, 1.2, 0.1);
    const auto current = bridgeVibration(rng, 4096, 100.0, 1.2, 0.1);
    EXPECT_LT(damageIndicator(healthy, current, 6), 0.35);
}

TEST(ArModel, DamageIndicatorRisesWhenFrequencyShifts)
{
    Rng rng(4);
    const auto healthy = bridgeVibration(rng, 4096, 100.0, 1.2, 0.05);
    const auto damaged = bridgeVibration(rng, 4096, 100.0, 0.7, 0.05);
    const double same = damageIndicator(
        healthy, bridgeVibration(rng, 4096, 100.0, 1.2, 0.05), 6);
    const double diff = damageIndicator(healthy, damaged, 6);
    EXPECT_GT(diff, same * 2.0);
}

TEST(ArModel, PredictTracksSignal)
{
    Rng rng(5);
    std::vector<double> x(5000);
    double prev = 0.0;
    for (auto &v : x) {
        v = 0.9 * prev + 0.1 * rng.normal();
        prev = v;
    }
    const ArFit fit = fitAr(x, 1);
    const auto pred = arPredict(x, fit);
    double err = 0.0, pow = 0.0;
    for (std::size_t i = 1; i < x.size(); ++i) {
        err += (pred[i] - x[i]) * (pred[i] - x[i]);
        pow += x[i] * x[i];
    }
    EXPECT_LT(err, pow * 0.2); // predictions much better than zero-model
}

// ---------------------------------------------------------------------
// Pattern matching
// ---------------------------------------------------------------------

TEST(PatternMatch, SelfMatchScoresOne)
{
    const auto tmpl = ecgBeatTemplate(64);
    const auto scores = normalizedCrossCorrelation(tmpl, tmpl);
    ASSERT_EQ(scores.size(), 1u);
    EXPECT_NEAR(scores[0], 1.0, 1e-9);
}

TEST(PatternMatch, FindsEmbeddedTemplate)
{
    Rng rng(6);
    std::vector<double> signal(500);
    for (auto &v : signal)
        v = 0.05 * rng.normal();
    const auto tmpl = ecgBeatTemplate(50);
    for (std::size_t i = 0; i < 50; ++i)
        signal[200 + i] += tmpl[i];
    const auto matches = findMatches(signal, tmpl, 0.8);
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_NEAR(static_cast<double>(matches[0].position), 200.0, 2.0);
}

TEST(PatternMatch, CountsBeatsAtExpectedRate)
{
    Rng rng(7);
    const double rate = 250.0;
    const double bpm = 75.0;
    const auto ecg = ecgSignal(rng, 5000, rate, bpm, 0.02);
    // A 3/4-beat template tolerates the generator's beat-to-beat
    // jitter (a full-beat template rejects neighbours as overlaps).
    const auto beat_len =
        static_cast<std::size_t>(60.0 / bpm * rate);
    const auto tmpl = ecgBeatTemplate(beat_len * 3 / 4);
    const auto matches = findMatches(ecg, tmpl, 0.45);
    // 5000 samples at 250 Hz = 20 s -> ~25 beats.
    EXPECT_GE(matches.size(), 19u);
    EXPECT_LE(matches.size(), 32u);
    // Rate from match count over the capture window.
    const double est_bpm = 60.0 * static_cast<double>(matches.size()) /
                           (5000.0 / rate);
    EXPECT_NEAR(est_bpm, bpm, 0.25 * bpm);
}

TEST(PatternMatch, NoOverlapInvariant)
{
    Rng rng(8);
    const auto ecg = ecgSignal(rng, 4000, 250.0, 70.0, 0.02);
    const auto tmpl = ecgBeatTemplate(200);
    const auto matches = findMatches(ecg, tmpl, 0.4);
    for (std::size_t i = 1; i < matches.size(); ++i) {
        EXPECT_GE(matches[i].position,
                  matches[i - 1].position + tmpl.size());
    }
}

TEST(PatternMatch, TemplateLongerThanSignal)
{
    const std::vector<double> sig(10, 1.0);
    const std::vector<double> tmpl(20, 1.0);
    EXPECT_TRUE(normalizedCrossCorrelation(sig, tmpl).empty());
    EXPECT_TRUE(findMatches(sig, tmpl, 0.5).empty());
    EXPECT_DOUBLE_EQ(meanMatchInterval({}), 0.0);
}

// ---------------------------------------------------------------------
// Signal generators
// ---------------------------------------------------------------------

TEST(SignalGen, VibrationHasRequestedLengthAndPower)
{
    Rng rng(9);
    const auto sig = bridgeVibration(rng, 1000, 100.0, 1.0, 0.0);
    EXPECT_EQ(sig.size(), 1000u);
    // Sum of three sinusoids: RMS = sqrt((1 + .45^2 + .2^2)/2) ~ 0.79.
    double sum2 = 0.0;
    for (double v : sig)
        sum2 += v * v;
    EXPECT_NEAR(std::sqrt(sum2 / 1000.0), 0.79, 0.08);
}

TEST(SignalGen, ThreeAxisProjectionRecoversMotion)
{
    Rng rng(10);
    const std::array<double, 3> dir{0.0, 0.0, 1.0};
    auto axes = threeAxisVibration(rng, 512, 100.0, 1.5, dir, 0.0);
    // All motion is on z; x and y are silent without noise.
    double x2 = 0.0, z2 = 0.0;
    for (std::size_t i = 0; i < 512; ++i) {
        x2 += axes[0][i] * axes[0][i];
        z2 += axes[2][i] * axes[2][i];
    }
    EXPECT_LT(x2, 1e-12);
    EXPECT_GT(z2, 100.0);
}

TEST(SignalGen, EcgIsPositivePeaked)
{
    Rng rng(11);
    const auto ecg = ecgSignal(rng, 2000, 250.0, 65.0, 0.0);
    const double peak = *std::max_element(ecg.begin(), ecg.end());
    EXPECT_NEAR(peak, 1.0, 0.2); // R-wave amplitude ~1
}

TEST(SignalGen, UvBoundedAndNonNegative)
{
    Rng rng(12);
    const auto uv = uvSignal(rng, 500, 8.0);
    for (double v : uv) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 8.5);
    }
}

TEST(SignalGen, ImageRowInByteRange)
{
    Rng rng(13);
    const auto row = imageRow(rng, 640);
    for (double v : row) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 255.0);
    }
}

// ---------------------------------------------------------------------
// Volumetric reconstruction
// ---------------------------------------------------------------------

TEST(Volumetric, ConstantFieldReproduced)
{
    std::vector<PointSample> samples;
    Rng rng(14);
    for (int i = 0; i < 20; ++i)
        samples.push_back(
            {rng.uniform(), rng.uniform(), rng.uniform(), 7.0});
    const auto grid = reconstructVolume(samples, 4, 4, 4);
    for (double v : grid.values)
        EXPECT_NEAR(v, 7.0, 1e-9);
}

TEST(Volumetric, NearestSampleDominates)
{
    std::vector<PointSample> samples = {
        {0.1, 0.1, 0.5, 100.0},
        {0.9, 0.9, 0.5, 0.0},
    };
    const auto grid = reconstructVolume(samples, 8, 8, 1);
    EXPECT_GT(grid.at(0, 0, 0), 90.0);
    EXPECT_LT(grid.at(7, 7, 0), 10.0);
}

TEST(Volumetric, EmptySamplesGiveZeroGrid)
{
    const auto grid = reconstructVolume({}, 2, 2, 2);
    for (double v : grid.values)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Volumetric, HotspotRecovered)
{
    Rng rng(15);
    std::vector<PointSample> samples;
    auto field = [](double x, double y, double) {
        const double dx = x - 0.7, dy = y - 0.3;
        return 20.0 + 45.0 * std::exp(-8.0 * (dx * dx + dy * dy));
    };
    for (int i = 0; i < 200; ++i) {
        PointSample s{rng.uniform(), rng.uniform(), rng.uniform(), 0.0};
        s.value = field(s.x, s.y, s.z);
        samples.push_back(s);
    }
    const auto grid = reconstructVolume(samples, 10, 10, 2);
    // Peak cell should be near (0.7, 0.3).
    std::size_t best_x = 0, best_y = 0;
    double best = -1e18;
    for (std::size_t ix = 0; ix < 10; ++ix) {
        for (std::size_t iy = 0; iy < 10; ++iy) {
            if (grid.at(ix, iy, 0) > best) {
                best = grid.at(ix, iy, 0);
                best_x = ix;
                best_y = iy;
            }
        }
    }
    EXPECT_NEAR(static_cast<double>(best_x), 6.5, 1.6);
    EXPECT_NEAR(static_cast<double>(best_y), 2.5, 1.6);
}

// ---------------------------------------------------------------------
// Bridge strength model
// ---------------------------------------------------------------------

TEST(BridgeModel, TautStringFormula)
{
    CableSpec spec;
    spec.lengthM = 100.0;
    spec.massPerMeterKg = 60.0;
    // T = 4 m L^2 f^2 for the fundamental.
    EXPECT_NEAR(tensionFromHarmonic(1.3, 1, spec),
                4.0 * 60.0 * 100.0 * 100.0 * 1.3 * 1.3, 1e-6);
    // n-th harmonic maps back to the same tension.
    EXPECT_NEAR(tensionFromHarmonic(2.6, 2, spec),
                tensionFromHarmonic(1.3, 1, spec), 1e-6);
}

TEST(BridgeModel, PipelineRecoversFundamental)
{
    Rng rng(16);
    const std::array<double, 3> dir{0.1, 0.05, 0.99};
    const double f0 = 1.2;
    auto axes = threeAxisVibration(rng, 4096, 100.0, f0, dir, 0.1);
    CableSpec spec;
    const auto est = estimateStrength(axes[0], axes[1], axes[2], dir,
                                      100.0, spec, 20.0);
    EXPECT_NEAR(est.fundamentalHz, f0, 0.1);
    EXPECT_GT(est.tensionN, 0.0);
}

TEST(BridgeModel, StrengthRatioTracksTension)
{
    Rng rng(17);
    const std::array<double, 3> dir{0.0, 0.0, 1.0};
    CableSpec spec;
    spec.nominalTensionN =
        tensionFromHarmonic(1.2, 1, spec); // healthy at 1.2 Hz
    auto healthy = threeAxisVibration(rng, 4096, 100.0, 1.2, dir, 0.05);
    auto slack = threeAxisVibration(rng, 4096, 100.0, 0.9, dir, 0.05);
    const auto est_h = estimateStrength(healthy[0], healthy[1],
                                        healthy[2], dir, 100.0, spec);
    const auto est_s = estimateStrength(slack[0], slack[1], slack[2],
                                        dir, 100.0, spec);
    EXPECT_NEAR(est_h.strengthRatio, 1.0, 0.25);
    EXPECT_LT(est_s.strengthRatio, est_h.strengthRatio);
}

TEST(BridgeModel, TemperatureCompensationDirection)
{
    Rng rng(18);
    const std::array<double, 3> dir{0.0, 0.0, 1.0};
    auto axes = threeAxisVibration(rng, 2048, 100.0, 1.2, dir, 0.05);
    CableSpec spec;
    const auto cold = estimateStrength(axes[0], axes[1], axes[2], dir,
                                       100.0, spec, 0.0);
    const auto hot = estimateStrength(axes[0], axes[1], axes[2], dir,
                                      100.0, spec, 40.0);
    EXPECT_GT(hot.tensionN, cold.tensionN);
}

TEST(OpCounts, AllPositiveAndMonotonic)
{
    EXPECT_GT(arFitOpCount(1000, 6), arFitOpCount(100, 6));
    EXPECT_GT(matchOpCount(1000, 50), matchOpCount(100, 50));
    EXPECT_GT(strengthOpCount(4096), strengthOpCount(256));
    EXPECT_GT(volumetricOpCount(512, 100), volumetricOpCount(64, 100));
    EXPECT_GT(compressOpCount(1000), 0u);
}

} // namespace
} // namespace neofog::kernels
