/**
 * @file
 * Tests for the network substrate: loss model, topology/routing, MAC.
 */

#include <gtest/gtest.h>

#include "hw/rf.hh"
#include "net/loss.hh"
#include "net/mac.hh"
#include "net/packet.hh"
#include "net/topology.hh"
#include "sim/logging.hh"

namespace neofog {
namespace {

TEST(LossModel, DefaultMatchesPaperRate)
{
    LossModel loss;
    EXPECT_DOUBLE_EQ(loss.config().successRate, 0.9925);
    EXPECT_EQ(loss.config().maxRetries, 0);
}

TEST(LossModel, LossFrequencyConverges)
{
    LossModel loss;
    Rng rng(5);
    const int n = 200000;
    int delivered = 0;
    for (int i = 0; i < n; ++i)
        delivered += loss.attempt(rng) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(delivered) / n, 0.9925, 0.002);
    EXPECT_EQ(loss.attemptsTotal(), static_cast<std::uint64_t>(n));
    EXPECT_NEAR(static_cast<double>(loss.lossesTotal()) / n, 0.0075,
                0.002);
}

TEST(LossModel, RetriesReduceEndToEndLoss)
{
    LossModel::Config cfg;
    cfg.successRate = 0.8;
    cfg.maxRetries = 2;
    LossModel loss(cfg);
    Rng rng(7);
    int failures = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (loss.deliver(rng) == 0)
            ++failures;
    }
    // P(3 consecutive failures) = 0.2^3 = 0.008.
    EXPECT_NEAR(static_cast<double>(failures) / n, 0.008, 0.002);
}

TEST(LossModel, WeatherFactorDegrades)
{
    LossModel::Config cfg;
    cfg.weatherFactor = 0.5;
    LossModel loss(cfg);
    EXPECT_NEAR(loss.effectiveRate(), 0.9925 * 0.5, 1e-12);
}

TEST(LossModel, RejectsBadConfig)
{
    LossModel::Config cfg;
    cfg.successRate = 0.0;
    EXPECT_THROW(LossModel{cfg}, FatalError);
    LossModel::Config cfg2;
    cfg2.maxRetries = -1;
    EXPECT_THROW(LossModel{cfg2}, FatalError);
}

TEST(Topology, DistanceAndRssi)
{
    EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
    // RSSI decreases with distance.
    EXPECT_GT(rssiAtDistance(1.0), rssiAtDistance(10.0));
    EXPECT_GT(rssiAtDistance(10.0), rssiAtDistance(100.0));
}

TEST(Topology, LinearChainHops)
{
    const ChainMesh mesh = ChainMesh::makeLinear(10, 12.0);
    const auto route = mesh.greedyRoute(0, 9, 15.0);
    EXPECT_EQ(ChainMesh::hopCount(route), 9u);
    EXPECT_EQ(route.front(), 0u);
    EXPECT_EQ(route.back(), 9u);
}

TEST(Topology, RouteUnreachableWhenRangeTooShort)
{
    const ChainMesh mesh = ChainMesh::makeLinear(5, 12.0);
    EXPECT_TRUE(mesh.greedyRoute(0, 4, 5.0).empty());
}

TEST(Topology, DeadNodeBypassedWithLongerRange)
{
    const ChainMesh mesh = ChainMesh::makeLinear(5, 10.0);
    std::vector<bool> alive(5, true);
    alive[2] = false;
    // Range covers a two-hop skip: orphan-scan bypass A->C.
    const auto route = mesh.greedyRoute(0, 4, 25.0, alive);
    ASSERT_FALSE(route.empty());
    for (std::size_t idx : route)
        EXPECT_NE(idx, 2u);
}

TEST(Topology, DeadNodePartitionsAtShortRange)
{
    const ChainMesh mesh = ChainMesh::makeLinear(5, 10.0);
    std::vector<bool> alive(5, true);
    alive[2] = false;
    EXPECT_TRUE(mesh.greedyRoute(0, 4, 12.0, alive).empty());
}

TEST(Topology, GreedyPrefersShortHops)
{
    // Nodes at 0, 6, 12: with range 15 the greedy route goes 0->1->2,
    // the hop-maximizing route goes 0->2 directly.
    ChainMesh mesh({{0, 0}, {6, 0}, {12, 0}});
    EXPECT_EQ(ChainMesh::hopCount(mesh.greedyRoute(0, 2, 15.0)), 2u);
    EXPECT_EQ(ChainMesh::hopCount(mesh.longestHopRoute(0, 2, 15.0)), 1u);
}

TEST(Topology, DenseChainInflatesGreedyHops)
{
    Rng rng(42);
    const ChainMesh base = ChainMesh::makeLinear(10, 12.0);
    const ChainMesh dense =
        ChainMesh::makeDenseChain(10, 4, 12.0, 5.0, rng);
    EXPECT_EQ(dense.size(), 40u);
    const auto base_route = base.greedyRoute(0, 9, 18.0);
    const auto dense_route = dense.greedyRoute(0, 36, 18.0);
    ASSERT_FALSE(base_route.empty());
    ASSERT_FALSE(dense_route.empty());
    EXPECT_GT(ChainMesh::hopCount(dense_route),
              2 * ChainMesh::hopCount(base_route));
}

TEST(Topology, ClosestNeighbor)
{
    ChainMesh mesh({{0, 0}, {1, 0}, {10, 0}});
    EXPECT_EQ(mesh.closestNeighbor(0), 1u);
    EXPECT_EQ(mesh.closestNeighbor(1), 0u);
    EXPECT_EQ(mesh.closestNeighbor(2), 1u);
}

TEST(Topology, NeighborsInRangeSorted)
{
    ChainMesh mesh({{0, 0}, {5, 0}, {2, 0}, {30, 0}});
    const auto n = mesh.neighborsInRange(0, 10.0);
    ASSERT_EQ(n.size(), 2u);
    EXPECT_EQ(n[0], 2u); // nearest first
    EXPECT_EQ(n[1], 1u);
}

TEST(Packet, KindNames)
{
    EXPECT_EQ(packetKindName(PacketKind::Data), "data");
    EXPECT_EQ(packetKindName(PacketKind::OrphanScan), "orphan-scan");
    EXPECT_EQ(packetKindName(PacketKind::CloneSync), "clone-sync");
}

TEST(Mac, DataHopCostsBothSides)
{
    Mac mac;
    NvRfController tx, rx;
    tx.configure();
    rx.configure();
    const MacExchange ex = mac.dataHop(tx, rx, 64);
    EXPECT_GT(ex.sender.duration, 0);
    EXPECT_GT(ex.sender.energy.joules(), 0.0);
    EXPECT_GT(ex.receiver.duration, 0);
    EXPECT_GT(ex.receiver.energy.joules(), 0.0);
    // Sender cost grows with payload.
    EXPECT_GT(mac.dataHop(tx, rx, 1024).sender.energy.joules(),
              ex.sender.energy.joules());
}

TEST(Mac, OrphanScanIsCheaperThanDataHop)
{
    Mac mac;
    SoftwareRf a, c;
    const MacExchange scan = mac.orphanScan(a, c);
    const MacExchange data = mac.dataHop(a, c, 256);
    EXPECT_LT(scan.sender.energy.joules() + scan.receiver.energy.joules(),
              data.sender.energy.joules() +
                  data.receiver.energy.joules());
}

TEST(Mac, RejoinTouchesBothNodes)
{
    Mac mac;
    NvRfController rec, nb;
    rec.configure();
    nb.configure();
    const MacExchange ex = mac.rejoin(rec, nb);
    EXPECT_GT(ex.sender.energy.joules(), 0.0);
    EXPECT_GT(ex.receiver.energy.joules(), 0.0);
}

} // namespace
} // namespace neofog
