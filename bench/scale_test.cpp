/**
 * @file
 * Scale test: the paper's simulator "runs thousands of single-node
 * simulators simultaneously (1000 for intra-chain simulation, and 1000
 * to 5000 for inter-chain simulation)" (§4).  This bench demonstrates
 * the same capability — 100 chains of 10 nodes (1000 node simulators)
 * for the intra-chain configuration, and 5000 physical nodes (1000
 * logical at 5x multiplexing) for the inter-chain one — and shows that
 * the parallel chain loop scales: each configuration runs at 1, 2, and
 * 4 threads, verifying the SystemReport is identical at every thread
 * count and reporting the wall-clock speedup.
 */

#include <chrono>
#include <cstdlib>

#include "bench_util.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"
#include "sim/thread_pool.hh"

using namespace neofog;
using namespace neofog::bench;

namespace {

double
runAndTime(const ScenarioConfig &cfg, SystemReport &out)
{
    const auto start = std::chrono::steady_clock::now();
    FogSystem sys(cfg);
    out = sys.run();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

/**
 * Run @p cfg at several thread counts, check the reports agree
 * bit-for-bit, and add one table row per thread count.
 * @return false if any parallel run diverged from the serial one.
 */
bool
sweepThreads(Table &t, ResultSink &sink, const char *label,
             ScenarioConfig cfg, const char *nodes)
{
    bool consistent = true;
    SystemReport serial;
    double serial_secs = 0.0;
    // Wall-clock slot throughput: every chain executes one slot per
    // slotInterval of horizon.
    const double total_slots =
        static_cast<double>(cfg.chains) *
        static_cast<double>(cfg.horizon / cfg.slotInterval);
    for (unsigned threads : {1u, 2u, 4u}) {
        cfg.threads = threads;
        SystemReport r;
        const double secs = runAndTime(cfg, r);
        if (threads == 1) {
            serial = r;
            serial_secs = secs;
        } else if (!(r == serial)) {
            consistent = false;
        }
        t.row({threads == 1 ? label : "", nodes,
               std::to_string(threads),
               std::to_string(r.totalProcessed()), pct(r.yield()),
               fmt(secs, 2) + " s",
               fmt(serial_secs / secs, 2) + "x"});
        const std::string key = keyify(label) + "_t" +
                                std::to_string(threads);
        sink.add(key + "_secs", secs);
        sink.add(key + "_speedup", serial_secs / secs);
        sink.add(key + "_slots_per_sec", total_slots / secs);
    }
    return consistent;
}

} // namespace

int
main()
{
    header("Scale test: thousands of node simulators (paper §4)");
    out("hardware threads: %u (speedup saturates at the "
                "physical core count)\n\n",
                ThreadPool::hardwareThreads());

    Table t({34, 8, 9, 11, 9, 10, 9});
    t.row({"Configuration", "Nodes", "Threads", "Processed", "Yield",
           "Wall time", "Speedup"});
    t.separator();

    ResultSink sink("scale_test");
    bool consistent = true;
    {
        // Intra-chain scale: 100 chains x 10 nodes = 1000 simulators.
        ScenarioConfig cfg = presets::fig10(presets::fiosNeofog(), 0);
        cfg.chains = 100;
        cfg.seed = 7;
        consistent &= sweepThreads(t, sink,
                                   "intra-chain: 100 x 10 nodes",
                                   cfg, "1000");
    }
    t.separator();
    {
        // Inter-chain scale: 100 chains x 10 logical x 5 clones =
        // 5000 physical simulators.
        ScenarioConfig cfg = presets::fig13(presets::fiosNeofog(), 5);
        cfg.chains = 100;
        cfg.seed = 7;
        consistent &= sweepThreads(t, sink,
                                   "inter-chain: 1000 logical @5x",
                                   cfg, "5000");
    }

    if (!consistent) {
        out("\nERROR: parallel runs diverged from the serial "
                    "report for the same seed.\n");
        return 1;
    }
    out("\nReports are bit-identical at every thread count "
                "(same seed, per-chain RNG\nstreams).  Aggregate "
                "yields at scale match the 10-node presentations (the "
                "paper\nalso simulates thousands and presents 10 "
                "consecutive nodes for simplicity).\n");
    sink.add("reports_consistent", consistent ? 1.0 : 0.0);
    sink.write();
    return 0;
}
