/**
 * @file
 * Scale test: the paper's simulator "runs thousands of single-node
 * simulators simultaneously (1000 for intra-chain simulation, and 1000
 * to 5000 for inter-chain simulation)" (§4).  This bench demonstrates
 * the same capability: 100 chains of 10 nodes (1000 node simulators)
 * for the intra-chain configuration, and 5000 physical nodes (1000
 * logical at 5x multiplexing) for the inter-chain one, reporting
 * aggregate results and wall-clock time.
 */

#include <chrono>
#include <cstdio>

#include "bench_util.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"

using namespace neofog;
using namespace neofog::bench;

namespace {

double
runAndTime(const ScenarioConfig &cfg, SystemReport &out)
{
    const auto start = std::chrono::steady_clock::now();
    FogSystem sys(cfg);
    out = sys.run();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

} // namespace

int
main()
{
    header("Scale test: thousands of node simulators (paper §4)");

    Table t({34, 12, 12, 12, 12, 12});
    t.row({"Configuration", "Nodes", "Slots", "Processed", "Yield",
           "Wall time"});
    t.separator();

    {
        // Intra-chain scale: 100 chains x 10 nodes = 1000 simulators.
        ScenarioConfig cfg = presets::fig10(presets::fiosNeofog(), 0);
        cfg.chains = 100;
        cfg.seed = 7;
        SystemReport r;
        const double secs = runAndTime(cfg, r);
        t.row({"intra-chain: 100 x 10 nodes", "1000",
               std::to_string(cfg.slotCount()),
               std::to_string(r.totalProcessed()), pct(r.yield()),
               fmt(secs, 2) + " s"});
    }
    {
        // Inter-chain scale: 100 chains x 10 logical x 5 clones =
        // 5000 physical simulators.
        ScenarioConfig cfg = presets::fig13(presets::fiosNeofog(), 5);
        cfg.chains = 100;
        cfg.seed = 7;
        SystemReport r;
        const double secs = runAndTime(cfg, r);
        t.row({"inter-chain: 1000 logical @5x", "5000",
               std::to_string(cfg.slotCount()),
               std::to_string(r.totalProcessed()), pct(r.yield()),
               fmt(secs, 2) + " s"});
    }

    std::printf("\nAggregate yields at scale match the 10-node "
                "presentations (the paper also\nsimulates thousands "
                "and presents 10 consecutive nodes for simplicity).\n");
    return 0;
}
