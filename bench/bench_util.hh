/**
 * @file
 * Shared helpers for the experiment harnesses: aligned table printing
 * and paper-vs-measured annotation.
 */

#ifndef NEOFOG_BENCH_BENCH_UTIL_HH
#define NEOFOG_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

namespace neofog::bench {

/** Print a horizontal rule sized to @p width. */
inline void
rule(int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Print a section header. */
inline void
header(const std::string &title)
{
    std::printf("\n");
    rule();
    std::printf("%s\n", title.c_str());
    rule();
}

/**
 * Simple fixed-width table printer: set column widths, then feed rows
 * of strings.
 */
class Table
{
  public:
    explicit Table(std::vector<int> widths) : _widths(std::move(widths))
    {}

    void
    row(const std::vector<std::string> &cells)
    {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const int w =
                i < _widths.size() ? _widths[i] : 12;
            std::printf("%-*s", w, cells[i].c_str());
        }
        std::printf("\n");
    }

    void
    separator()
    {
        int total = 0;
        for (int w : _widths)
            total += w;
        rule(total);
    }

  private:
    std::vector<int> _widths;
};

/** Format a double with the given precision. */
inline std::string
fmt(double v, int precision = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

/** Format a percentage. */
inline std::string
pct(double v, int precision = 1)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
    return buf;
}

} // namespace neofog::bench

#endif // NEOFOG_BENCH_BENCH_UTIL_HH
