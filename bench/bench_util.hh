/**
 * @file
 * Shared helpers for the experiment harnesses.
 *
 * The aligned-table printing is the report_io::TextTable implementation
 * (the same one SystemReport::print uses) bound to stdout; this header
 * only adapts it to the harnesses' printf-style usage.  ResultSink is
 * the machine-readable side: every harness deposits its headline
 * numbers and writes a schema-tagged BENCH_<name>.json next to its
 * tables, so perf trajectories can be tracked across commits.
 */

#ifndef NEOFOG_BENCH_BENCH_UTIL_HH
#define NEOFOG_BENCH_BENCH_UTIL_HH

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/report_io.hh"

#if defined(__GNUC__)
#define NEOFOG_BENCH_PRINTF(fmt_idx, va_idx)                          \
    __attribute__((format(printf, fmt_idx, va_idx)))
#else
#define NEOFOG_BENCH_PRINTF(fmt_idx, va_idx)
#endif

namespace neofog::bench {

/**
 * printf-style stdout sink: the one narrative/progress text channel
 * of the harnesses.  Routing every bench's chatter through here (R3,
 * neofog_lint) means redirecting or silencing harness output is a
 * one-line change instead of a tree-wide hunt for printf calls.
 */
inline void out(const char *format, ...) NEOFOG_BENCH_PRINTF(1, 2);

inline void
out(const char *format, ...)
{
    std::va_list ap;
    va_start(ap, format);
    std::vfprintf(stdout, format, ap);
    va_end(ap);
}

/** printf-style stderr sink for harness errors. */
inline void err(const char *format, ...) NEOFOG_BENCH_PRINTF(1, 2);

inline void
err(const char *format, ...)
{
    std::va_list ap;
    va_start(ap, format);
    std::vfprintf(stderr, format, ap);
    va_end(ap);
}

/** Print a horizontal rule sized to @p width. */
inline void
rule(int width = 78)
{
    report_io::rule(std::cout, width);
}

/** Print a section header. */
inline void
header(const std::string &title)
{
    report_io::sectionHeader(std::cout, title);
}

/**
 * Fixed-width table on stdout: set column widths, then feed rows of
 * strings.  Thin stdout binding of report_io::TextTable — the one
 * aligned-table implementation.
 */
class Table
{
  public:
    explicit Table(std::vector<int> widths)
        : _table(std::cout, std::move(widths))
    {}

    void row(const std::vector<std::string> &cells)
    { _table.row(cells); }

    void separator() { _table.separator(); }

  private:
    report_io::TextTable _table;
};

/** Format a double with the given precision. */
inline std::string
fmt(double v, int precision = 2)
{
    return report_io::fmtFixed(v, precision);
}

/** Format a percentage. */
inline std::string
pct(double v, int precision = 1)
{
    return report_io::fmtPct(v, precision);
}

/**
 * Turn a human-facing label ("NOS-VP", "forest solar 0.20 mW") into a
 * stable snake_case result key ("nos_vp", "forest_solar_0_20_mw").
 */
inline std::string
keyify(const std::string &label)
{
    std::string out;
    bool sep = false;
    for (const char ch : label) {
        if (std::isalnum(static_cast<unsigned char>(ch))) {
            if (sep && !out.empty())
                out.push_back('_');
            sep = false;
            out.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(ch))));
        } else {
            sep = true;
        }
    }
    return out;
}

/**
 * Machine-readable results of one harness: ordered key/number pairs
 * (plus string notes), written as a neofog-bench-v1 JSON document to
 * BENCH_<name>.json in the current directory (or $NEOFOG_BENCH_DIR).
 */
class ResultSink
{
  public:
    explicit ResultSink(std::string bench_name)
        : _name(std::move(bench_name))
    {}

    void
    add(const std::string &key, double value)
    {
        _results.emplace_back(key, value);
    }

    void
    note(const std::string &key, const std::string &value)
    {
        _notes.emplace_back(key, value);
    }

    /** Target path (for tooling that re-reads the file). */
    std::string
    path() const
    {
        const char *dir = std::getenv("NEOFOG_BENCH_DIR");
        return std::string(dir ? dir : ".") + "/BENCH_" + _name +
               ".json";
    }

    /**
     * Write the JSON document; prints the destination and returns
     * false (with a stderr message) when the file cannot be written.
     */
    bool
    write() const
    {
        const std::string file_path = path();
        std::ofstream os(file_path);
        if (!os) {
            err("bench: cannot write %s\n", file_path.c_str());
            return false;
        }
        report_io::JsonWriter w(os);
        w.beginObject();
        w.key("schema").value("neofog-bench-v1");
        w.key("bench").value(_name);
        w.key("results").beginObject();
        for (const auto &[k, v] : _results)
            w.key(k).value(v);
        w.endObject();
        w.key("notes").beginObject();
        for (const auto &[k, v] : _notes)
            w.key(k).value(v);
        w.endObject();
        w.endObject();
        os << '\n';
        out("\nresults -> %s\n", file_path.c_str());
        return true;
    }

  private:
    std::string _name;
    std::vector<std::pair<std::string, double>> _results;
    std::vector<std::pair<std::string, std::string>> _notes;
};

} // namespace neofog::bench

#endif // NEOFOG_BENCH_BENCH_UTIL_HH
