/**
 * @file
 * Reproduces Figure 10: total data packages captured and processed by
 * the fog under five ample, *independent* power traces (forest fire
 * monitoring), for the three systems:
 *   NOS-VP (no LB), NOS-NVP (baseline tree LB), FIOS-NEOFog
 *   (distributed LB).
 *
 * Paper reference points (averages): VP 13656 wakeups / 2664 packages;
 * NVP 12383 wakeups / 3236 total / 3045 in-fog; NEOFog ~similar
 * wakeups / 5582 total (37% of the 15000 ideal) / 5018 in-fog.
 */


#include "bench_util.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"

using namespace neofog;
using namespace neofog::bench;

int
main()
{
    header("Figure 10: independent power profiles (forest), 10-node "
           "chain, 5 h, ideal = 15000");

    const presets::SystemUnderTest systems[] = {
        presets::nosVp(),
        presets::nosNvpBaseline(),
        presets::fiosNeofog(),
    };

    Table t({18, 10, 10, 10, 10, 10, 10, 12, 10});
    t.row({"System", "Profile1", "Profile2", "Profile3", "Profile4",
           "Profile5", "Average", "AvgWakeups", "AvgFog"});
    t.separator();

    double avg_total[3] = {};
    for (int si = 0; si < 3; ++si) {
        const auto &sut = systems[si];
        std::vector<std::string> cells{sut.label};
        std::uint64_t sum_total = 0, sum_wake = 0, sum_fog = 0;
        for (int profile = 0; profile < 5; ++profile) {
            FogSystem system(presets::fig10(sut, profile));
            const SystemReport r = system.run();
            cells.push_back(std::to_string(r.totalProcessed()));
            sum_total += r.totalProcessed();
            sum_wake += r.wakeups;
            sum_fog += r.packagesInFog;
        }
        avg_total[si] = static_cast<double>(sum_total) / 5.0;
        cells.push_back(fmt(avg_total[si], 0));
        cells.push_back(fmt(static_cast<double>(sum_wake) / 5.0, 0));
        cells.push_back(fmt(static_cast<double>(sum_fog) / 5.0, 0));
        t.row(cells);
    }

    out("\nShape checks (paper in parentheses):\n");
    out("  NVP/VP total     = %.2fx (1.21x)\n",
                avg_total[1] / avg_total[0]);
    out("  NEOFog/VP total  = %.2fx (2.10x)\n",
                avg_total[2] / avg_total[0]);
    out("  NEOFog/NVP total = %.2fx (1.72x)\n",
                avg_total[2] / avg_total[1]);
    out("  NEOFog yield     = %.1f%% of ideal (37%%)\n",
                100.0 * avg_total[2] / 15000.0);

    ResultSink sink("fig10_independent");
    sink.add("vp_avg_total", avg_total[0]);
    sink.add("nvp_avg_total", avg_total[1]);
    sink.add("neofog_avg_total", avg_total[2]);
    sink.add("nvp_vs_vp", avg_total[1] / avg_total[0]);
    sink.add("neofog_vs_vp", avg_total[2] / avg_total[0]);
    sink.add("neofog_vs_nvp", avg_total[2] / avg_total[1]);
    sink.add("neofog_yield", avg_total[2] / 15000.0);
    sink.write();
    return 0;
}
