/**
 * @file
 * Reproduces Figures 1 and 4: the node-level timing/energy breakdown of
 * the three work sequences — NOS-VP, NOS-NVP, and FIOS (NVP + NVRF).
 *
 * Paper reference points: VP restart ~300 us and software RF init
 * (531 ms measured for ML7266 at a 1 MHz host) plus 30 ms-1 s network
 * rebuild; NOS-NVP restore 32 us with 33 ms NVM-direct RF init; FIOS
 * restore 7 us with 1.2 ms NVRF self-init (the 27x speedup) and
 * millisecond-scale transmission setup (6.2x throughput advantage).
 */


#include "bench_util.hh"
#include "hw/processor.hh"
#include "hw/rf.hh"
#include "hw/sensor.hh"

using namespace neofog;
using namespace neofog::bench;

int
main()
{
    header("Figures 1/4: node-level phase breakdown (per activation, "
           "64-byte payload)");

    const std::size_t payload = 64;

    Table t({16, 16, 16, 16, 16, 14});
    t.row({"System", "CPU wake", "Sensor", "RF init", "TX 64B",
           "Total"});
    t.separator();

    auto print_system = [&](const std::string &label, Processor &cpu,
                            RfModule &rf, SensorSpec sensor) {
        const double wake_ms = msFromTicks(cpu.wakeLatency());
        const double sensor_ms =
            msFromTicks(sensor.initLatency + sensor.sampleLatency);
        const RfPhase init = rf.initCost();
        const RfPhase tx = rf.txCost(payload);
        const double total_ms = wake_ms + sensor_ms +
                                msFromTicks(init.duration) +
                                msFromTicks(tx.duration);
        t.row({label, fmt(wake_ms, 3) + " ms", fmt(sensor_ms, 1) + " ms",
               fmt(msFromTicks(init.duration), 1) + " ms",
               fmt(msFromTicks(tx.duration), 1) + " ms",
               fmt(total_ms, 1) + " ms"});
        t.row({"", fmt(cpu.wakeEnergy().microjoules(), 2) + " uJ",
               fmt((sensor.initEnergy() + sensor.sampleEnergy())
                       .microjoules(), 2) + " uJ",
               fmt(init.energy.millijoules(), 2) + " mJ",
               fmt(tx.energy.millijoules(), 2) + " mJ", ""});
    };

    {
        VolatileProcessor vp;
        SoftwareRf rf;
        print_system("NOS-VP", vp, rf, sensors::tmp101());
    }
    {
        NvProcessor nvp;
        SoftwareRf rf{SoftwareRf::nvmDirectConfig()};
        print_system("NOS-NVP", nvp, rf, sensors::tmp101());
    }
    {
        NvProcessor nvp{NvProcessor::fiosConfig()};
        NvRfController rf;
        rf.configure();
        print_system("FIOS NV-mote", nvp, rf, sensors::tmp101());
    }

    // Headline derived ratios.
    SoftwareRf sw_vp;
    SoftwareRf sw_nvm{SoftwareRf::nvmDirectConfig()};
    NvRfController nvrf;
    nvrf.configure();

    const double init_vs_nvm =
        msFromTicks(sw_nvm.swConfig().initLatency) /
        msFromTicks(nvrf.nvConfig().selfInitLatency);
    const double init_vs_sw =
        msFromTicks(sw_vp.swConfig().initLatency) /
        msFromTicks(nvrf.nvConfig().selfInitLatency);
    out("\nDerived ratios (paper in parentheses):\n");
    out("  RF init speedup, NVRF vs NVM-direct: %.1fx (27x)\n",
                init_vs_nvm);
    out("  RF init speedup, NVRF vs software:   %.0fx "
                "(531 ms -> 1.2 ms)\n", init_vs_sw);

    // Throughput advantage: sustained bytes/s including per-packet
    // overheads.  The paper's 6.2x corresponds to multi-kB transfers;
    // at small payloads the fixed-cost elimination makes the NVRF
    // advantage even larger.
    const std::size_t bulk = 3700;
    const double tx_adv_bulk =
        msFromTicks(sw_nvm.txCost(bulk).duration) /
        msFromTicks(nvrf.txCost(bulk).duration);
    const double tx_adv_small =
        msFromTicks(sw_nvm.txCost(payload).duration) /
        msFromTicks(nvrf.txCost(payload).duration);
    out("  TX throughput advantage, NVRF vs software RF: "
                "%.1fx at %zu B (6.2x), %.1fx at %zu B\n",
                tx_adv_bulk, bulk, tx_adv_small, payload);

    NvProcessor nos_nvp;
    VolatileProcessor vp;
    const double wake_vp = static_cast<double>(vp.wakeLatency());
    const double wake_nvp = static_cast<double>(nos_nvp.wakeLatency());
    const double wake_fios = static_cast<double>(
        NvProcessor{NvProcessor::fiosConfig()}.wakeLatency());
    out("  CPU wake: VP %.0f us vs NOS-NVP %.0f us vs FIOS "
                "%.0f us (300/32/7 us)\n",
                wake_vp, wake_nvp, wake_fios);

    ResultSink sink("fig4_node_timing");
    sink.add("rf_init_speedup_nvrf_vs_nvm", init_vs_nvm);
    sink.add("rf_init_speedup_nvrf_vs_sw", init_vs_sw);
    sink.add("tx_throughput_advantage_3700b", tx_adv_bulk);
    sink.add("tx_throughput_advantage_64b", tx_adv_small);
    sink.add("cpu_wake_us_vp", wake_vp);
    sink.add("cpu_wake_us_nvp", wake_nvp);
    sink.add("cpu_wake_us_fios", wake_fios);
    sink.write();

    // ASCII rendition of Fig 1/4's activation timelines: one glyph per
    // ~25 ms of activation time ('.'=cpu wake, 's'=sensor, 'i'=RF
    // init, 'j'=network rejoin, 'T'=transmit, 'C'=fog compute on
    // intermittent power).
    out("\nActivation timelines (1 glyph ~ 25 ms):\n");
    auto bar = [](char c, double ms) {
        const int n = std::max(1, static_cast<int>(ms / 25.0));
        for (int i = 0; i < n && i < 60; ++i)
            out("%c", c);
    };
    {
        SoftwareRf rf;
        out("  %-10s", "NOS-VP");
        bar('.', 0.3);
        bar('s', msFromTicks(sensors::tmp101().initLatency));
        bar('i', msFromTicks(rf.swConfig().initLatency));
        bar('j', msFromTicks(rf.swConfig().rejoinLatency));
        bar('T', msFromTicks(rf.txCost(payload).duration));
        out("\n");
    }
    {
        SoftwareRf rf{SoftwareRf::nvmDirectConfig()};
        out("  %-10s", "NOS-NVP");
        bar('.', 0.032);
        bar('s', msFromTicks(sensors::tmp101().initLatency));
        bar('i', msFromTicks(rf.swConfig().initLatency));
        bar('j', msFromTicks(rf.swConfig().rejoinLatency));
        bar('T', msFromTicks(rf.txCost(payload).duration));
        out("\n");
    }
    {
        NvRfController rf;
        rf.configure();
        out("  %-10s", "FIOS");
        bar('.', 0.007);
        bar('s', msFromTicks(sensors::tmp101().initLatency));
        bar('C', 400.0); // complex fog computing on direct power
        bar('i', msFromTicks(rf.nvConfig().selfInitLatency));
        bar('T', msFromTicks(rf.txCost(payload).duration));
        out("\n");
    }
    out("\n  The FIOS activation spends its time computing "
                "('C'), not waiting on the\n  radio ('i'/'j'/'T') — "
                "the Fig 1 shift from RF-dominated to compute-"
                "intensive.\n");
    return 0;
}
