/**
 * @file
 * Statistical confidence for the headline comparison: the Fig 10
 * systems replayed across 10 independent seeds, reported as
 * mean +- stddev with per-seed paired ratios.
 *
 * The paper presents five power profiles per figure; this bench goes
 * further and quantifies the spread, showing the system ordering is
 * not an artifact of any particular trace draw.
 */

#include <iostream>

#include "bench_util.hh"
#include "fog/experiment.hh"
#include "fog/presets.hh"

using namespace neofog;
using namespace neofog::bench;

int
main()
{
    header("Confidence: Fig 10 systems across 10 seeds "
           "(mean +- stddev)");

    const presets::SystemUnderTest systems[] = {
        presets::nosVp(),
        presets::nosNvpBaseline(),
        presets::fiosNeofog(),
    };

    const int kRuns = 10;
    const std::uint64_t kBase = 3000;

    ResultSink sink("confidence");
    Table t({18, 18, 18, 14, 14});
    t.row({"System", "Total", "Fog", "Yield", "Compute%"});
    t.separator();
    for (const auto &sut : systems) {
        const ScenarioConfig cfg = presets::fig10(sut, 0);
        const AggregateReport agg = ExperimentRunner::runSeeds(
            cfg, {.runs = kRuns, .baseSeed = kBase});
        const ScalarStat &total = agg.stat("total_processed");
        const ScalarStat &fog = agg.stat("packages_in_fog");
        t.row({sut.label,
               fmt(total.mean(), 0) + " +- " + fmt(total.stddev(), 0),
               fmt(fog.mean(), 0) + " +- " + fmt(fog.stddev(), 0),
               pct(agg.stat("yield").mean()),
               pct(agg.stat("compute_ratio").mean())});
        sink.add(sut.label + std::string("_total_mean"), total.mean());
        sink.add(sut.label + std::string("_total_stddev"),
                 total.stddev());
        sink.add(sut.label + std::string("_fog_mean"), fog.mean());
    }

    // Paired per-seed ratios (same traces for both systems).
    const RunOptions paired{.runs = kRuns, .baseSeed = kBase};
    const ScalarStat vs_vp = ExperimentRunner::compareTotals(
        presets::fig10(presets::nosVp(), 0),
        presets::fig10(presets::fiosNeofog(), 0), paired);
    const ScalarStat vs_nvp = ExperimentRunner::compareTotals(
        presets::fig10(presets::nosNvpBaseline(), 0),
        presets::fig10(presets::fiosNeofog(), 0), paired);

    out("\nPaired per-seed ratios:\n");
    out("  NEOFog/VP:  %.2fx +- %.2f  [%.2f, %.2f]\n",
                vs_vp.mean(), vs_vp.stddev(), vs_vp.min(),
                vs_vp.max());
    out("  NEOFog/NVP: %.2fx +- %.2f  [%.2f, %.2f]\n",
                vs_nvp.mean(), vs_nvp.stddev(), vs_nvp.min(),
                vs_nvp.max());
    out("\nShape check: the minimum per-seed ratio stays well "
                "above 1x — the ordering\nholds for every trace draw, "
                "not just on average.\n");
    sink.add("neofog_vs_vp_ratio_mean", vs_vp.mean());
    sink.add("neofog_vs_vp_ratio_min", vs_vp.min());
    sink.add("neofog_vs_nvp_ratio_mean", vs_nvp.mean());
    sink.add("neofog_vs_nvp_ratio_min", vs_nvp.min());
    sink.write();
    return 0;
}
