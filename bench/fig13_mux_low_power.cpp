/**
 * @file
 * Reproduces Figure 13: the mountain-slide system in heavy rain (very
 * low, dependent power) — the condition the system actually matters
 * for, since slides happen during rain.  NVD4Q multiplexing is swept
 * from 100% to 500%.
 *
 * Paper reference points: VP w/o LB processes ~725 packages in-fog;
 * NEOFog at 100% ~2800; multiplexing raises in-fog processing until it
 * saturates around 300% (the total-successful-sampling bound, ~8000),
 * giving the headline 8x at 3x multiplexing.
 */


#include "bench_util.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"

using namespace neofog;
using namespace neofog::bench;

int
main()
{
    header("Figure 13: node multiplexing, very low dependent power "
           "(rainy mountain)");

    Table t({26, 12, 12, 12, 12});
    t.row({"System", "Sampled", "Processed", "InFog", "Yield"});
    t.separator();

    double vp_ref = 0.0;
    {
        FogSystem vp(presets::fig13(presets::nosVp(), 1));
        const SystemReport r = vp.run();
        vp_ref = static_cast<double>(r.totalProcessed());
        t.row({"VP w/o LB (100%)",
               std::to_string(r.packagesSampled),
               std::to_string(r.totalProcessed()),
               std::to_string(r.packagesInFog),
               pct(r.yield())});
    }

    double processed_at[6] = {};
    for (int mux = 1; mux <= 5; ++mux) {
        FogSystem sys(presets::fig13(presets::fiosNeofog(), mux));
        const SystemReport r = sys.run();
        processed_at[mux] = static_cast<double>(r.totalProcessed());
        t.row({"NEOFog @ " + std::to_string(mux * 100) + "%",
               std::to_string(r.packagesSampled),
               std::to_string(r.totalProcessed()),
               std::to_string(r.packagesInFog),
               pct(r.yield())});
    }

    out("\nShape checks (paper in parentheses):\n");
    out("  NEOFog@100%% / VP = %.2fx (~3.9x)\n",
                processed_at[1] / vp_ref);
    out("  NEOFog@300%% / VP = %.2fx (~8x headline)\n",
                processed_at[3] / vp_ref);
    out("  saturation: 400%%/300%% = %.2fx, 500%%/300%% = %.2fx "
                "(expect ~1.0x past 300%%)\n",
                processed_at[4] / processed_at[3],
                processed_at[5] / processed_at[3]);

    ResultSink sink("fig13_mux_low_power");
    sink.add("vp_total", vp_ref);
    for (int mux = 1; mux <= 5; ++mux) {
        sink.add("neofog_total_mux" + std::to_string(mux),
                 processed_at[mux]);
    }
    sink.add("neofog_100_vs_vp", processed_at[1] / vp_ref);
    sink.add("neofog_300_vs_vp", processed_at[3] / vp_ref);
    sink.write();
    return 0;
}
