/**
 * @file
 * Fleet-scale throughput harness: the SoA chain shards + batched slot
 * kernel running city-sized deployments (100k+ chains, 1M+ total
 * nodes) — the scale the object-per-node layout could not stream.
 *
 * Four sections:
 *  - fleet throughput: build and run the full fleet, reporting
 *    slots_per_sec (chain-slots executed per wall-clock second) and
 *    bytes_per_node (resident SoA shard bytes / total nodes), with the
 *    batched slot kernel on vs off and the reports asserted identical;
 *  - thread sweep: the same fleet at --threads 1/2/4 must produce
 *    bit-identical reports (chain-order shard merge discipline);
 *  - snapshot resume: a mid-horizon checkpoint must resume onto the
 *    uninterrupted run's exact report on the SoA layout;
 *  - batched StepMachine: IntermittentExecution::runBatch over scaled
 *    views of one shared stream vs per-trace run(), results asserted
 *    identical, wall-clock compared;
 *  - distributed sharding: the same fleet slice through the
 *    multi-process coordinator/worker runtime (src/dist/) at
 *    --workers 2 and 4, reports asserted bit-identical to the
 *    in-process run, end-to-end throughput reported.
 *
 * Options:
 *   --chains N   fleet width override (default 100000; smoke 2000)
 *   --nodes M    nodes per chain (default 10)
 *   --slots S    horizon in slots (default 10)
 *   --smoke      small run for CI plus schema validation of the JSON
 */

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "dist/coordinator.hh"
#include "energy/power_trace.hh"
#include "energy/trace_cache.hh"
#include "fog/fog_system.hh"
#include "hw/processor.hh"
#include "node/intermittent.hh"
#include "sim/logging.hh"
#include "sim/report_io.hh"
#include "sim/rng.hh"
#include "snapshot/snapshot.hh"

using namespace neofog;
using namespace neofog::bench;

namespace {

double
seconds(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * The fleet scenario: the fig-13 deployment shape (dependent rainy-day
 * income — every node a scaled view of one shared stream, the case the
 * batched slot kernel hoists) at city width.
 */
ScenarioConfig
fleetScenario(std::size_t chains, std::size_t nodes_per_chain,
              std::int64_t slots)
{
    ScenarioConfig cfg;
    cfg.chains = chains;
    cfg.nodesPerChain = nodes_per_chain;
    cfg.multiplexing = 1;
    cfg.mode = OperatingMode::FiosNvMote;
    cfg.traceKind = TraceKind::RainLow;
    cfg.meanIncome = Power::fromMilliwatts(2.2);
    cfg.balancerPolicy = "distributed";
    cfg.slotInterval = 12 * kSec;
    cfg.horizon = slots * cfg.slotInterval;
    cfg.seed = 20260808;
    return cfg;
}

/** Total resident SoA bytes across every chain shard. */
std::size_t
fleetShardBytes(const FogSystem &sys)
{
    std::size_t bytes = 0;
    for (const auto &engine : sys.chains())
        bytes += engine->soa().residentBytes();
    return bytes;
}

struct TimedRun
{
    double buildSecs = 0.0; ///< FogSystem construction (trace + nodes)
    double runSecs = 0.0;   ///< slot execution (the throughput metric)
};

TimedRun
runTimed(const ScenarioConfig &cfg, SystemReport &report,
         std::size_t *shard_bytes = nullptr)
{
    TimedRun timed;
    auto start = std::chrono::steady_clock::now();
    FogSystem sys(cfg);
    timed.buildSecs = seconds(start);
    start = std::chrono::steady_clock::now();
    report = sys.run();
    timed.runSecs = seconds(start);
    if (shard_bytes != nullptr)
        *shard_bytes = fleetShardBytes(sys);
    return timed;
}

/** Re-read the emitted JSON and check it against the schema. */
int
validateSink(const ResultSink &sink)
{
    std::ifstream in(sink.path());
    if (!in) {
        err("fleet_bench: cannot re-read %s\n", sink.path().c_str());
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
        const auto doc = report_io::parseJson(text.str());
        const std::string schema_err = report_io::validateBenchJson(doc);
        if (!schema_err.empty()) {
            err("fleet_bench: schema violation: %s\n",
                schema_err.c_str());
            return 1;
        }
    } catch (const FatalError &e) {
        err("fleet_bench: emitted invalid JSON: %s\n", e.what());
        return 1;
    }
    out("fleet_bench: %s validates against neofog-bench-v1\n",
        sink.path().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t chains = 100'000;
    std::size_t nodes_per_chain = 10;
    std::int64_t slots = 10;
    bool smoke = false;
    bool chains_set = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--chains") == 0 &&
                   i + 1 < argc) {
            chains = static_cast<std::size_t>(std::atoll(argv[++i]));
            chains_set = true;
        } else if (std::strcmp(argv[i], "--nodes") == 0 &&
                   i + 1 < argc) {
            nodes_per_chain =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (std::strcmp(argv[i], "--slots") == 0 &&
                   i + 1 < argc) {
            slots = std::atoll(argv[++i]);
        } else {
            err("usage: %s [--chains N] [--nodes M] [--slots S] "
                "[--smoke]\n",
                argv[0]);
            return 2;
        }
    }
    if (smoke && !chains_set)
        chains = 2'000;
    if (chains == 0 || nodes_per_chain == 0 || slots <= 0) {
        err("fleet_bench: fleet shape must be nonzero\n");
        return 2;
    }

    const std::size_t total_nodes = chains * nodes_per_chain;
    const double chain_slots =
        static_cast<double>(chains) * static_cast<double>(slots);
    ResultSink sink("fleet_bench");
    sink.add("chains", static_cast<double>(chains));
    sink.add("nodes_per_chain", static_cast<double>(nodes_per_chain));
    sink.add("total_nodes", static_cast<double>(total_nodes));
    sink.add("slots", static_cast<double>(slots));

    // ---- Section 1: fleet throughput, kernel ladder ----------------
    // Three rungs share one fleet shape: the per-node beginSlot loop
    // (the reference), the batched hoist with scalar banking
    // (--no-simd-kernel), and the full vectorized shard kernel.  The
    // per-node reference is run exactly once and its report reused for
    // every parity assertion below — re-running it per section doubled
    // the --smoke wall-clock for no extra coverage.
    header("Fleet throughput: " + std::to_string(chains) + " chains x " +
           std::to_string(nodes_per_chain) + " nodes, " +
           std::to_string(slots) + " slots");
    ScenarioConfig cfg = fleetScenario(chains, nodes_per_chain, slots);

    SystemReport scalar;
    ScenarioConfig scalar_cfg = cfg;
    scalar_cfg.batchSlotKernel = false;
    const TimedRun scalar_t = runTimed(scalar_cfg, scalar);

    SystemReport nosimd;
    ScenarioConfig nosimd_cfg = cfg;
    nosimd_cfg.simdKernel = false;
    const TimedRun nosimd_t = runTimed(nosimd_cfg, nosimd);

    SystemReport batched;
    std::size_t shard_bytes = 0;
    const TimedRun batched_t = runTimed(cfg, batched, &shard_bytes);

    if (!(batched == scalar)) {
        err("fleet_bench: batched slot kernel diverged from the "
            "per-node path\n");
        return 1;
    }
    if (!(nosimd == scalar)) {
        err("fleet_bench: scalar-banking fallback diverged from the "
            "per-node path\n");
        return 1;
    }

    const double slots_per_sec = chain_slots / batched_t.runSecs;
    const double bytes_per_node =
        static_cast<double>(shard_bytes) /
        static_cast<double>(total_nodes);
    Table t1({24, 12, 12, 14, 10});
    t1.row({"Configuration", "Build s", "Run s", "Slots/s", "Speedup"});
    t1.separator();
    t1.row({"per-node beginSlot", fmt(scalar_t.buildSecs, 2),
            fmt(scalar_t.runSecs, 2),
            fmt(chain_slots / scalar_t.runSecs, 0), "1.00x"});
    t1.row({"batch, scalar banking", fmt(nosimd_t.buildSecs, 2),
            fmt(nosimd_t.runSecs, 2),
            fmt(chain_slots / nosimd_t.runSecs, 0),
            fmt(scalar_t.runSecs / nosimd_t.runSecs, 2) + "x"});
    t1.row({"vectorized shard kernel", fmt(batched_t.buildSecs, 2),
            fmt(batched_t.runSecs, 2), fmt(slots_per_sec, 0),
            fmt(scalar_t.runSecs / batched_t.runSecs, 2) + "x"});
    out("\nresident shard bytes/node: %.1f (%zu nodes, %.1f MiB "
        "total)\n",
        bytes_per_node, total_nodes,
        static_cast<double>(shard_bytes) / (1024.0 * 1024.0));
    sink.add("slots_per_sec", slots_per_sec);
    sink.add("scalar_slots_per_sec", chain_slots / scalar_t.runSecs);
    sink.add("batch_kernel_speedup",
             scalar_t.runSecs / batched_t.runSecs);
    sink.add("simd_kernel_speedup",
             nosimd_t.runSecs / batched_t.runSecs);
    sink.add("build_secs", batched_t.buildSecs);
    sink.add("bytes_per_node", bytes_per_node);
    sink.add("reports_match_scalar", 1.0);
    sink.add("simd_matches_scalar", 1.0);

    // ---- Section 2: thread-sweep bit-identity ----------------------
    header("Thread sweep: chain-order shard merge bit-identity");
    {
        bool consistent = true;
        double best_secs = batched_t.runSecs;
        double four_thread_secs = 0.0;
        for (unsigned threads : {2u, 4u}) {
            ScenarioConfig swept = cfg;
            swept.threads = threads;
            SystemReport r;
            const TimedRun t_t = runTimed(swept, r);
            best_secs = std::min(best_secs, t_t.runSecs);
            if (threads == 4)
                four_thread_secs = t_t.runSecs;
            if (!(r == batched))
                consistent = false;
            out("  --threads %u: %.2f s, bit-identical: %s\n", threads,
                t_t.runSecs, r == batched ? "yes" : "NO");
        }
        // Amdahl-style scaling quality: (4-thread throughput over
        // 1-thread throughput) / 4.  1.0 = perfect scaling; the
        // memory-bound slot sweep lands well below that, and the gate
        // watches it so locality regressions show up at the PR that
        // caused them.
        const double efficiency_4t =
            batched_t.runSecs / (4.0 * four_thread_secs);
        out("  parallel efficiency at 4 threads: %.2f\n",
            efficiency_4t);
        sink.add("reports_consistent", consistent ? 1.0 : 0.0);
        sink.add("best_threaded_slots_per_sec", chain_slots / best_secs);
        sink.add("parallel_efficiency_4t", efficiency_4t);
        if (!consistent) {
            err("fleet_bench: thread sweep diverged on the SoA "
                "layout\n");
            return 1;
        }
    }

    // ---- Section 3: snapshot resume on the SoA layout --------------
    header("Snapshot resume: mid-horizon checkpoint, exact report");
    {
        namespace fs = std::filesystem;
        const char *bench_dir = std::getenv("NEOFOG_BENCH_DIR");
        const fs::path snap_dir =
            fs::path(bench_dir ? bench_dir : ".") /
            "fleet_bench_snapshots";
        std::error_code ec;
        fs::remove_all(snap_dir, ec);
        fs::create_directories(snap_dir, ec);
        if (ec) {
            err("fleet_bench: cannot create %s\n",
                snap_dir.string().c_str());
            return 1;
        }

        // Snapshot a small slice of the fleet (resume reconstructs and
        // re-runs it; the bit-identity claim is per-chain, so a slice
        // proves the layout without doubling the fleet run).
        ScenarioConfig snap_cfg = fleetScenario(
            std::min<std::size_t>(chains, smoke ? 200 : 1'000),
            nodes_per_chain, slots);
        SystemReport uninterrupted;
        runTimed(snap_cfg, uninterrupted);

        const std::int64_t split = std::max<std::int64_t>(1, slots / 2);
        snap_cfg.snapshot.everySlots = split;
        snap_cfg.snapshot.dir = snap_dir.string();
        SystemReport snapping;
        runTimed(snap_cfg, snapping);
        bool resume_ok = snapping == uninterrupted;

        const std::string snap_path =
            (snap_dir / snapshot::snapshotFileName(split)).string();
        if (resume_ok && fs::exists(snap_path)) {
            auto resumed = FogSystem::resume(snap_path);
            resume_ok = resumed->resumeSlot() == split &&
                        resumed->run() == uninterrupted;
        } else {
            resume_ok = false;
        }
        fs::remove_all(snap_dir, ec);
        out("  resume at slot %lld bit-identical: %s\n",
            static_cast<long long>(split), resume_ok ? "yes" : "NO");
        sink.add("resume_bit_identical", resume_ok ? 1.0 : 0.0);
        if (!resume_ok) {
            err("fleet_bench: snapshot resume diverged on the SoA "
                "layout\n");
            return 1;
        }
    }

    // ---- Section 4: batched StepMachine ----------------------------
    header("Batched StepMachine: runBatch vs per-trace run");
    {
        const Tick horizon = smoke ? 10 * kMin : kHour;
        const std::size_t machines = smoke ? 64 : 256;
        // The production fleet shape: one shared rain stream behind a
        // prefix table (see FogSystem), scaled per node.
        const auto base = std::make_shared<CumulativeTrace>(
            traces::makeRainUnitStream(7, horizon + kMin),
            horizon + kMin);
        Rng rng(99);
        std::vector<std::unique_ptr<ScaledTrace>> owned;
        std::vector<const PowerTrace *> traces;
        owned.reserve(machines);
        traces.reserve(machines);
        for (std::size_t i = 0; i < machines; ++i) {
            owned.push_back(std::make_unique<ScaledTrace>(
                0.0026 * rng.uniform(0.5, 1.5), base));
            traces.push_back(owned.back().get());
        }

        const NvProcessor nvp{NvProcessor::fiosConfig()};
        IntermittentExecution::Config ff_cfg;
        ff_cfg.frontend = FrontEnd::makeFios().config();

        auto start = std::chrono::steady_clock::now();
        std::vector<IntermittentExecution::Result> loop_results;
        loop_results.reserve(machines);
        for (const PowerTrace *trace : traces)
            loop_results.push_back(
                IntermittentExecution::run(nvp, *trace, horizon, ff_cfg));
        const double loop_secs = seconds(start);

        start = std::chrono::steady_clock::now();
        const auto batch_results = IntermittentExecution::runBatch(
            nvp, traces, horizon, ff_cfg);
        const double batch_secs = seconds(start);

        bool identical = batch_results.size() == loop_results.size();
        for (std::size_t i = 0; identical && i < machines; ++i) {
            const auto &a = loop_results[i];
            const auto &b = batch_results[i];
            identical = a.instructionsCompleted ==
                            b.instructionsCompleted &&
                        a.instructionsWasted == b.instructionsWasted &&
                        a.powerCycles == b.powerCycles &&
                        a.activeTime == b.activeTime &&
                        a.overheadTime == b.overheadTime &&
                        a.harvested == b.harvested &&
                        a.spent == b.spent;
        }
        out("  %zu machines, %s horizon: loop %.3f s, batch %.3f s "
            "(%.2fx), identical: %s\n",
            machines, smoke ? "10 min" : "1 h", loop_secs, batch_secs,
            loop_secs / std::max(batch_secs, 1e-9),
            identical ? "yes" : "NO");
        sink.add("runbatch_loop_secs", loop_secs);
        sink.add("runbatch_batch_secs", batch_secs);
        sink.add("runbatch_speedup",
                 loop_secs / std::max(batch_secs, 1e-9));
        sink.add("runbatch_identical", identical ? 1.0 : 0.0);
        if (!identical) {
            err("fleet_bench: runBatch diverged from per-trace run\n");
            return 1;
        }
    }

    // ---- Section 5: distributed sharding ---------------------------
    header("Distributed sharding: --workers vs in-process, bit-identity");
    {
        // The same slice shape Section 3 snapshots: multi-process
        // overhead (fork + wire barriers + shard merge) is per-run,
        // so a slice measures it without doubling the fleet cost.
        const std::size_t slice =
            std::min<std::size_t>(chains, smoke ? 200 : 1'000);
        const ScenarioConfig dist_cfg =
            fleetScenario(slice, nodes_per_chain, slots);
        const double slice_slots = static_cast<double>(slice) *
                                   static_cast<double>(slots);
        SystemReport in_process;
        runTimed(dist_cfg, in_process);

        bool matches = true;
        double best_secs = 0.0;
        for (const long long workers : {2LL, 4LL}) {
            dist::DistOptions opt;
            opt.workersRequested = workers;
            const auto start = std::chrono::steady_clock::now();
            const dist::DistResult res =
                dist::runDistributed(dist_cfg, opt);
            const double secs = seconds(start);
            if (best_secs == 0.0 || secs < best_secs)
                best_secs = secs;
            if (!(res.report == in_process))
                matches = false;
            out("  --workers %lld: %.2f s end-to-end, bit-identical: "
                "%s\n",
                workers, secs, res.report == in_process ? "yes" : "NO");
        }
        const double dist_slots_per_sec = slice_slots / best_secs;
        out("  best distributed throughput: %.0f chain-slots/s "
            "(fork + wire + merge included)\n",
            dist_slots_per_sec);
        sink.add("workers_matches_threads", matches ? 1.0 : 0.0);
        sink.add("dist_slots_per_sec", dist_slots_per_sec);
        if (!matches) {
            err("fleet_bench: distributed run diverged from the "
                "in-process report\n");
            return 1;
        }
    }

    if (smoke)
        sink.note("mode", "smoke");
    if (!sink.write())
        return 1;
    return smoke ? validateSink(sink) : 0;
}
