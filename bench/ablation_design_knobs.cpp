/**
 * @file
 * Ablation: the two main design knobs DESIGN.md calls out.
 *
 * 1. Package freshness deadline (MAXTIME): how long sampled data stays
 *    useful before it must be fog-processed.  Longer deadlines let
 *    nodes bank energy across slots (throughput up) at the cost of
 *    result latency — and they erode the load balancer's role, since
 *    waiting becomes an alternative to shipping work.
 *
 * 2. Super-capacitor size: NVD4Q's whole premise is that a clone can
 *    accumulate multiple slots of income, which only works if the
 *    capacitor can hold it.  Sweeping capacity at 3x multiplexing in
 *    the rain scenario shows the storage-bound regime.
 */


#include "bench_util.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"

using namespace neofog;
using namespace neofog::bench;

int
main()
{
    ResultSink sink("ablation_design_knobs");
    header("Ablation 1: package freshness deadline (NEOFog, forest "
           "power)");
    {
        Table t({12, 12, 12, 14, 14});
        t.row({"Deadline", "Total", "Balanced", "Discarded", "Yield"});
        t.separator();
        for (int deadline : {1, 2, 4, 8}) {
            ScenarioConfig cfg =
                presets::fig10(presets::fiosNeofog(), 0);
            cfg.nodeTemplate.packageDeadlineSlots = deadline;
            cfg.seed = 5;
            FogSystem sys(cfg);
            const SystemReport r = sys.run();
            std::uint64_t discarded = 0;
            for (std::size_t i = 0; i < 10; ++i)
                discarded +=
                    sys.node(0, i).stats().samplesDiscarded.value();
            t.row({std::to_string(deadline) + " slot(s)",
                   std::to_string(r.totalProcessed()),
                   std::to_string(r.tasksBalancedAway),
                   std::to_string(discarded), pct(r.yield())});
            const std::string key =
                "deadline" + std::to_string(deadline);
            sink.add(key + "_total",
                     static_cast<double>(r.totalProcessed()));
            sink.add(key + "_balanced",
                     static_cast<double>(r.tasksBalancedAway));
        }
        out("\nThroughput is nearly deadline-insensitive at this "
                    "operating point, but the\nbalancer's role shrinks as "
                    "deadlines lengthen (banking energy replaces\nshipping "
                    "work).  The paper's nodes transmit results in the next "
                    "power-on\nperiod (deadline 1), which maximizes "
                    "freshness at no throughput cost.\n");
    }

    header("Ablation 2: capacitor size at 3x multiplexing (rain)");
    {
        Table t({14, 12, 12, 16});
        t.row({"Capacity", "Total", "Yield", "Overflow (J)"});
        t.separator();
        for (double cap_mj : {60.0, 125.0, 250.0, 500.0, 1000.0}) {
            ScenarioConfig cfg =
                presets::fig13(presets::fiosNeofog(), 3);
            cfg.nodeTemplate.cap.capacity =
                Energy::fromMillijoules(cap_mj);
            cfg.nodeTemplate.cap.initial =
                Energy::fromMillijoules(cap_mj * 0.24);
            cfg.seed = 5;
            FogSystem sys(cfg);
            const SystemReport r = sys.run();
            t.row({fmt(cap_mj, 0) + " mJ",
                   std::to_string(r.totalProcessed()), pct(r.yield()),
                   fmt(r.capOverflowMj / 1000.0, 2)});
            const std::string key = "cap" + fmt(cap_mj, 0) + "mj";
            sink.add(key + "_total",
                     static_cast<double>(r.totalProcessed()));
            sink.add(key + "_yield", r.yield());
        }
        out("\nSmall capacitors overflow during bright spells "
                    "and starve the multiplexed\nclones; growing them "
                    "recovers yield until the income itself binds.\n");
    }
    sink.write();
    return 0;
}
