/**
 * @file
 * Hot-path microbenchmarks for the prefix-sum energy-trace cache and
 * the intermittent-execution fast-forward, plus an end-to-end
 * headline-shaped run with the cache on vs off.
 *
 * Three sections:
 *  - integrate: slot-shaped windows/sec for {cached, reference} x
 *    {constant, piecewise, interpolated, rain composite};
 *  - fast-forward: IntermittentExecution analytic vs stepped, same
 *    results asserted, wall-clock speedup reported;
 *  - end-to-end: the headline low-power (fig 13) scenario with the
 *    shared energy cache enabled vs the per-node reference path,
 *    slots/sec and speedup, and a 1/2/4-thread bit-identity check.
 *
 * Options:
 *   --hours X   end-to-end horizon override (default 1.0)
 *   --smoke     tiny run for CI: 0.25 h horizon, scaled-down window
 *               counts, and schema validation of the emitted JSON
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "energy/power_trace.hh"
#include "energy/trace_cache.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"
#include "hw/processor.hh"
#include "node/intermittent.hh"
#include "sim/logging.hh"
#include "sim/report_io.hh"
#include "sim/rng.hh"

using namespace neofog;
using namespace neofog::bench;
using namespace neofog::literals;

namespace {

double
seconds(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** The four integration subjects of the micro section. */
struct MicroTrace
{
    const char *label;
    std::shared_ptr<const PowerTrace> trace;
};

std::vector<MicroTrace>
microTraces(Tick span)
{
    std::vector<MicroTrace> set;
    set.push_back({"constant", std::make_shared<ConstantTrace>(2.6_mW)});
    Rng rng(17);
    std::vector<PiecewiseTrace::Segment> segs;
    Tick at = 0;
    while (at < span + kMin) {
        segs.push_back({at, Power::fromMilliwatts(rng.uniform(0.0, 8.0))});
        at += ticksFromSeconds(rng.uniform(3.0, 90.0));
    }
    set.push_back({"piecewise", std::make_shared<PiecewiseTrace>(segs)});
    std::vector<InterpolatedTrace::Knot> knots;
    at = 0;
    while (at < span + kMin) {
        knots.push_back({at, Power::fromMilliwatts(rng.uniform(0.0, 5.0))});
        at += ticksFromSeconds(rng.uniform(20.0, 120.0));
    }
    set.push_back(
        {"interpolated", std::make_shared<InterpolatedTrace>(knots)});
    // The headline composite: rain-spell schedule x diurnal envelope.
    set.push_back({"rain composite",
                   std::shared_ptr<const PowerTrace>(
                       traces::makeRainUnitStream(7, span + kMin))});
    return set;
}

/**
 * Integrate @p windows slot-shaped (12 s aligned) windows sweeping the
 * span, via either the cache or the stepped reference.
 * @return wall-clock seconds.
 */
double
timeWindows(const PowerTrace &trace, Tick span, long windows,
            bool stepped, double &checksum)
{
    const Tick slot = 12 * kSec;
    const Tick wrap = (span / slot) * slot;
    double acc = 0.0;
    const auto start = std::chrono::steady_clock::now();
    Tick from = 0;
    for (long i = 0; i < windows; ++i) {
        const Tick to = from + slot;
        acc += stepped ? trace.integrateStepped(from, to).joules()
                       : trace.integrate(from, to).joules();
        from = to < wrap ? to : 0;
    }
    const double secs = seconds(start);
    checksum += acc; // defeat dead-code elimination
    return secs;
}

double
runFogTimed(ScenarioConfig cfg, double hours, bool cache_on,
            SystemReport &report)
{
    cfg.horizon = ticksFromSeconds(hours * 3600.0);
    cfg.energyCache.enabled = cache_on;
    const auto start = std::chrono::steady_clock::now();
    FogSystem sys(cfg);
    report = sys.run();
    return seconds(start);
}

/** Re-read the emitted JSON and check it against the schema. */
int
validateSink(const ResultSink &sink)
{
    std::ifstream in(sink.path());
    if (!in) {
        err("perf_hotpath: cannot re-read %s\n", sink.path().c_str());
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
        const auto doc = report_io::parseJson(text.str());
        const std::string schema_err = report_io::validateBenchJson(doc);
        if (!schema_err.empty()) {
            err("perf_hotpath: schema violation: %s\n",
                schema_err.c_str());
            return 1;
        }
    } catch (const FatalError &e) {
        err("perf_hotpath: emitted invalid JSON: %s\n", e.what());
        return 1;
    }
    out("perf_hotpath: %s validates against neofog-bench-v1\n",
        sink.path().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    double hours = 1.0;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
            hours = 0.25;
        } else if (std::strcmp(argv[i], "--hours") == 0 && i + 1 < argc) {
            hours = std::atof(argv[++i]);
        } else {
            err("usage: %s [--hours X] [--smoke]\n", argv[0]);
            return 2;
        }
    }

    ResultSink sink("perf_hotpath");
    double checksum = 0.0;

    // ---- Section 1: slot-window integration micro ------------------
    header("Energy integration: prefix-sum cache vs stepped reference");
    const Tick span = 2 * kHour;
    const long windows = smoke ? 20'000 : 200'000;
    Table t1({16, 16, 16, 12});
    t1.row({"Trace", "Ref win/s", "Cached win/s", "Speedup"});
    t1.separator();
    for (const auto &[label, trace] : microTraces(span)) {
        const auto build = std::chrono::steady_clock::now();
        const CumulativeTrace cache(trace, span);
        const double build_secs = seconds(build);
        const double ref_secs =
            timeWindows(*trace, span, windows, true, checksum);
        const double cache_secs =
            timeWindows(cache, span, windows, false, checksum);
        const double ref_rate = windows / ref_secs;
        const double cache_rate = windows / cache_secs;
        t1.row({label, fmt(ref_rate / 1e6, 2) + "M",
                fmt(cache_rate / 1e6, 2) + "M",
                fmt(ref_secs / cache_secs, 1) + "x"});
        const std::string key = keyify(label);
        sink.add(key + "_ref_windows_per_sec", ref_rate);
        sink.add(key + "_cached_windows_per_sec", cache_rate);
        sink.add(key + "_integrate_speedup", ref_secs / cache_secs);
        sink.add(key + "_cache_build_secs", build_secs);
    }

    // ---- Section 2: intermittent fast-forward ----------------------
    header("Intermittent execution: analytic fast-forward vs 1 ms steps");
    const Tick ff_horizon = smoke ? 15 * kMin : 2 * kHour;
    const NvProcessor nvp{NvProcessor::fiosConfig()};
    IntermittentExecution::Config ff_cfg;
    ff_cfg.frontend = FrontEnd::makeFios().config();
    Table t2({16, 14, 14, 12});
    t2.row({"Trace", "Stepped s", "Fast s", "Speedup"});
    t2.separator();
    for (const auto &[label, trace] : microTraces(ff_horizon)) {
        IntermittentExecution::Config stepped_cfg = ff_cfg;
        stepped_cfg.fastForward = false;
        // Mote-level income: the unit-mean composite is ~1 W.
        const ScaledTrace scaled(0.0026, trace);
        auto start = std::chrono::steady_clock::now();
        const auto stepped = IntermittentExecution::run(
            nvp, scaled, ff_horizon, stepped_cfg);
        const double stepped_secs = seconds(start);
        start = std::chrono::steady_clock::now();
        const auto fast =
            IntermittentExecution::run(nvp, scaled, ff_horizon, ff_cfg);
        const double fast_secs = seconds(start);
        if (fast.powerCycles != stepped.powerCycles ||
            fast.instructionsCompleted != stepped.instructionsCompleted ||
            fast.activeTime != stepped.activeTime ||
            fast.overheadTime != stepped.overheadTime) {
            err("perf_hotpath: fast-forward diverged on %s\n", label);
            return 1;
        }
        t2.row({label, fmt(stepped_secs, 3), fmt(fast_secs, 3),
                fmt(stepped_secs / std::max(fast_secs, 1e-9), 1) + "x"});
        const std::string key = keyify(label);
        sink.add(key + "_ffwd_stepped_secs", stepped_secs);
        sink.add(key + "_ffwd_fast_secs", fast_secs);
        sink.add(key + "_ffwd_speedup",
                 stepped_secs / std::max(fast_secs, 1e-9));
    }

    // ---- Section 3: end-to-end headline scenario -------------------
    header("End to end: headline low-power scenario, cache on vs off");
    Table t3({24, 8, 14, 14, 12});
    t3.row({"Configuration", "Mux", "Ref slots/s", "Cached slots/s",
            "Speedup"});
    t3.separator();
    double on_total = 0.0;
    double off_total = 0.0;
    for (const int mux : {1, 3}) {
        ScenarioConfig cfg =
            presets::fig13(presets::fiosNeofog(), mux);
        cfg.chains = smoke ? 10 : 40;
        const double slots =
            static_cast<double>(cfg.chains) *
            (hours * 3600.0 /
             secondsFromTicks(cfg.slotInterval));
        SystemReport with_cache;
        SystemReport reference;
        const double on_secs =
            runFogTimed(cfg, hours, true, with_cache);
        const double off_secs =
            runFogTimed(cfg, hours, false, reference);
        on_total += on_secs;
        off_total += off_secs;
        // The cache only reassociates the same trapezoid sums, so the
        // processed totals must agree closely (DESIGN.md documents the
        // <= 1e-12 relative window delta).
        const double delta = std::abs(
            static_cast<double>(with_cache.totalProcessed()) -
            static_cast<double>(reference.totalProcessed()));
        const auto key =
            "e2e_mux" + std::to_string(mux);
        t3.row({"FIOS + distributed LB", std::to_string(mux),
                fmt(slots / off_secs, 0), fmt(slots / on_secs, 0),
                fmt(off_secs / on_secs, 2) + "x"});
        sink.add(key + "_ref_secs", off_secs);
        sink.add(key + "_cached_secs", on_secs);
        sink.add(key + "_ref_slots_per_sec", slots / off_secs);
        sink.add(key + "_cached_slots_per_sec", slots / on_secs);
        sink.add(key + "_speedup", off_secs / on_secs);
        sink.add(key + "_processed_delta", delta);
    }
    const double e2e_speedup = off_total / on_total;
    out("\nend-to-end speedup (cache+fast-forward vs reference): "
        "%.2fx\n",
        e2e_speedup);
    sink.add("e2e_speedup", e2e_speedup);

    // ---- Section 4: thread bit-identity with the shared cache ------
    {
        ScenarioConfig cfg = presets::fig13(presets::fiosNeofog(), 3);
        cfg.chains = smoke ? 10 : 40;
        SystemReport serial;
        bool consistent = true;
        for (unsigned threads : {1u, 2u, 4u}) {
            cfg.threads = threads;
            SystemReport r;
            runFogTimed(cfg, hours, true, r);
            if (threads == 1)
                serial = r;
            else if (!(r == serial))
                consistent = false;
        }
        out("shared-cache reports bit-identical at 1/2/4 threads: "
            "%s\n",
            consistent ? "yes" : "NO");
        sink.add("reports_consistent", consistent ? 1.0 : 0.0);
        if (!consistent) {
            err("perf_hotpath: thread sweep diverged with the shared "
                "energy cache\n");
            return 1;
        }
    }

    sink.add("checksum", checksum);
    if (smoke)
        sink.note("mode", "smoke");
    if (!sink.write())
        return 1;
    return smoke ? validateSink(sink) : 0;
}
