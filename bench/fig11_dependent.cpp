/**
 * @file
 * Reproduces Figure 11: the same three systems under ample *dependent*
 * power traces (bridge monitoring: all nodes share a day profile with
 * ~30% per-node variance).
 *
 * Paper reference points: VP 13886 wakeups / 2494 packages; NVP 12859 /
 * 3439 total / 3126 fog; NEOFog 6990 total (46.6% of ideal) / 6418 fog.
 * Dependent results land within ~10% of the independent ones; the
 * distributed balancer is less effective (lower stored-energy variance)
 * but cheaper transfers partially compensate.
 */


#include "bench_util.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"

using namespace neofog;
using namespace neofog::bench;

int
main()
{
    header("Figure 11: dependent power profiles (bridge), 10-node "
           "chain, 5 h, ideal = 15000");

    const presets::SystemUnderTest systems[] = {
        presets::nosVp(),
        presets::nosNvpBaseline(),
        presets::fiosNeofog(),
    };

    Table t({18, 10, 10, 10, 10, 10, 10, 12, 10});
    t.row({"System", "Profile1", "Profile2", "Profile3", "Profile4",
           "Profile5", "Average", "AvgWakeups", "AvgFog"});
    t.separator();

    double avg_total[3] = {};
    double avg_balanced[3] = {};
    for (int si = 0; si < 3; ++si) {
        const auto &sut = systems[si];
        std::vector<std::string> cells{sut.label};
        std::uint64_t sum_total = 0, sum_wake = 0, sum_fog = 0;
        std::uint64_t sum_bal = 0;
        for (int profile = 0; profile < 5; ++profile) {
            FogSystem system(presets::fig11(sut, profile));
            const SystemReport r = system.run();
            cells.push_back(std::to_string(r.totalProcessed()));
            sum_total += r.totalProcessed();
            sum_wake += r.wakeups;
            sum_fog += r.packagesInFog;
            sum_bal += r.tasksBalancedAway;
        }
        avg_total[si] = static_cast<double>(sum_total) / 5.0;
        avg_balanced[si] = static_cast<double>(sum_bal) / 5.0;
        cells.push_back(fmt(avg_total[si], 0));
        cells.push_back(fmt(static_cast<double>(sum_wake) / 5.0, 0));
        cells.push_back(fmt(static_cast<double>(sum_fog) / 5.0, 0));
        t.row(cells);
    }

    out("\nShape checks (paper in parentheses):\n");
    out("  NVP/VP total     = %.2fx (1.38x)\n",
                avg_total[1] / avg_total[0]);
    out("  NEOFog/VP total  = %.2fx (2.1x, '2.1X gains')\n",
                avg_total[2] / avg_total[0]);
    out("  NEOFog/NVP total = %.2fx (1.7x, '1.7X gains')\n",
                avg_total[2] / avg_total[1]);
    out("  NEOFog yield     = %.1f%% of ideal (46.6%%)\n",
                100.0 * avg_total[2] / 15000.0);
    out("  balanced tasks (NEOFog, avg) = %.0f — expected lower"
                " than the\n  independent scenario since dependent power"
                " leaves less variance to exploit\n",
                avg_balanced[2]);

    ResultSink sink("fig11_dependent");
    sink.add("vp_avg_total", avg_total[0]);
    sink.add("nvp_avg_total", avg_total[1]);
    sink.add("neofog_avg_total", avg_total[2]);
    sink.add("nvp_vs_vp", avg_total[1] / avg_total[0]);
    sink.add("neofog_vs_vp", avg_total[2] / avg_total[0]);
    sink.add("neofog_vs_nvp", avg_total[2] / avg_total[1]);
    sink.add("neofog_yield", avg_total[2] / 15000.0);
    sink.add("neofog_avg_balanced", avg_balanced[2]);
    sink.write();
    return 0;
}
