/**
 * @file
 * Policy tournament: every registered offloading policy competing
 * across the income sweep × scenario matrix, with cross-seed
 * confidence intervals from the metrics registry.
 *
 * Holds the node architecture fixed (FIOS NV-mote — the NEOFog
 * hardware) and varies only the balancing policy, so the ranking
 * isolates the offloading design space the related work maps out:
 * the paper's Algorithm 1 against the tree/cluster baselines, greedy
 * nearest-rich, delay-energy Lyapunov online control, and the
 * RF-cost-aware scheme.
 *
 * Three sections:
 *  - tournament: per (scenario, income, policy) cell, total packages
 *    processed across seeds as mean ± 95% CI;
 *  - ranking: policies ordered by total delivered packages across
 *    the whole matrix, with their per-scenario shares;
 *  - determinism: every policy's fig-13-shaped multi-chain report
 *    must be bit-identical at --threads 1/2/4 (exit 1 on divergence).
 *
 * Options:
 *   --smoke    shrunk matrix for CI plus schema validation of the
 *              emitted BENCH_ablation_policies.json
 *   --seeds N  seeds per cell (default 5; smoke 2)
 */

#include <cmath>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "balance/policy_registry.hh"
#include "bench_util.hh"
#include "fog/experiment.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"
#include "sim/logging.hh"
#include "sim/report_io.hh"

using namespace neofog;
using namespace neofog::bench;

namespace {

/** One scenario family of the matrix, income applied on top. */
struct ScenarioCell
{
    const char *label;
    ScenarioConfig base;
};

/** Half-width of the 95% normal CI for a cross-seed mean. */
double
ci95(const ScalarStat &stat)
{
    if (stat.count() < 2)
        return 0.0;
    return 1.96 * stat.stddev() /
           std::sqrt(static_cast<double>(stat.count()));
}

/** Re-read the emitted JSON and check it against the schema. */
int
validateSink(const ResultSink &sink)
{
    std::ifstream in(sink.path());
    if (!in) {
        err("ablation_policies: cannot re-read %s\n",
            sink.path().c_str());
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
        const auto doc = report_io::parseJson(text.str());
        const std::string schema_err =
            report_io::validateBenchJson(doc);
        if (!schema_err.empty()) {
            err("ablation_policies: schema violation: %s\n",
                schema_err.c_str());
            return 1;
        }
    } catch (const FatalError &e) {
        err("ablation_policies: emitted invalid JSON: %s\n",
            e.what());
        return 1;
    }
    out("ablation_policies: %s validates against neofog-bench-v1\n",
        sink.path().c_str());
    return 0;
}

/**
 * The determinism fixture: the fig-13 preset widened to several
 * chains so the thread sweep actually distributes work.
 */
ScenarioConfig
determinismScenario(const std::string &policy, unsigned threads)
{
    ScenarioConfig cfg =
        presets::fig13(presets::fiosNeofog(), 2);
    cfg.balancerPolicy = policy;
    cfg.chains = 6;
    cfg.seed = 77;
    cfg.threads = threads;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    int seeds = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--seeds") == 0 &&
                   i + 1 < argc) {
            seeds = std::atoi(argv[++i]);
        } else {
            err("usage: %s [--smoke] [--seeds N]\n", argv[0]);
            return 2;
        }
    }
    if (seeds <= 0)
        seeds = smoke ? 2 : 5;

    const std::vector<std::string> policies =
        PolicyRegistry::instance().names();
    header("Policy tournament: " + std::to_string(policies.size()) +
           " registered policies, " + std::to_string(seeds) +
           " seeds per cell");

    // The income sweep spans starvation, the harvesting regime the
    // paper operates in, and ample power where balancing compresses.
    const std::vector<double> incomes = smoke
        ? std::vector<double>{1.0, 2.6}
        : std::vector<double>{0.5, 1.0, 2.6, 6.0};

    const presets::SystemUnderTest sut = presets::fiosNeofog();
    std::vector<ScenarioCell> matrix;
    matrix.push_back({"forest", presets::fig10(sut, 0)});
    matrix.push_back({"bridge", presets::fig11(sut, 0)});
    if (!smoke)
        matrix.push_back({"rain-mux2", presets::fig13(sut, 2)});
    if (smoke) {
        for (ScenarioCell &cell : matrix)
            cell.base.horizon = 1 * kHour;
    }

    ResultSink sink("ablation_policies");
    sink.note("mode", smoke ? "smoke" : "full");
    sink.note("policies", std::to_string(policies.size()));
    sink.note("seeds_per_cell", std::to_string(seeds));

    // --- tournament ---------------------------------------------------
    std::vector<double> grand_total(policies.size(), 0.0);
    for (const ScenarioCell &cell : matrix) {
        header("Scenario: " + std::string(cell.label));
        std::vector<int> widths{14};
        for (std::size_t p = 0; p < policies.size(); ++p)
            widths.push_back(17);
        Table t(widths);
        std::vector<std::string> head{"Income mW"};
        head.insert(head.end(), policies.begin(), policies.end());
        t.row(head);
        t.separator();

        for (const double mw : incomes) {
            std::vector<std::string> cells{fmt(mw, 1)};
            for (std::size_t p = 0; p < policies.size(); ++p) {
                ScenarioConfig cfg = cell.base;
                cfg.balancerPolicy = policies[p];
                cfg.meanIncome = Power::fromMilliwatts(mw);
                const AggregateReport agg =
                    ExperimentRunner::runSeeds(
                        cfg, {.runs = seeds, .baseSeed = 9000});
                const ScalarStat &total =
                    agg.stat("total_processed");
                grand_total[p] += total.mean();
                cells.push_back(fmt(total.mean(), 0) + " +- " +
                                fmt(ci95(total), 0));
                const std::string key =
                    keyify(policies[p]) + "_" +
                    keyify(std::string(cell.label)) + "_" +
                    keyify(fmt(mw, 1)) + "mw";
                sink.add(key + "_mean", total.mean());
                sink.add(key + "_ci95", ci95(total));
            }
            t.row(cells);
        }
    }

    // --- ranking ------------------------------------------------------
    std::vector<std::size_t> order(policies.size());
    for (std::size_t p = 0; p < order.size(); ++p)
        order[p] = p;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (grand_total[a] != grand_total[b])
                      return grand_total[a] > grand_total[b];
                  return policies[a] < policies[b];
              });

    header("Ranking (total delivered packages across the matrix)");
    Table rank({6, 18, 16, 12});
    rank.row({"Rank", "Policy", "Total", "vs best"});
    rank.separator();
    const double best = grand_total[order.front()];
    for (std::size_t r = 0; r < order.size(); ++r) {
        const std::size_t p = order[r];
        rank.row({std::to_string(r + 1), policies[p],
                  fmt(grand_total[p], 0),
                  best > 0.0 ? pct(grand_total[p] / best) : "n/a"});
        sink.add("rank_" + keyify(policies[p]),
                 static_cast<double>(r + 1));
        sink.add("total_" + keyify(policies[p]), grand_total[p]);
    }
    sink.note("winner", policies[order.front()]);

    // --- determinism --------------------------------------------------
    header("Thread bit-identity (fig-13 shape, 6 chains, "
           "threads 1/2/4)");
    int divergences = 0;
    for (const std::string &policy : policies) {
        SystemReport ref;
        bool first = true;
        bool identical = true;
        for (const unsigned threads : {1u, 2u, 4u}) {
            FogSystem sys(determinismScenario(policy, threads));
            const SystemReport report = sys.run();
            if (first) {
                ref = report;
                first = false;
            } else if (!(report == ref)) {
                identical = false;
            }
        }
        out("  %-14s %s\n", policy.c_str(),
            identical ? "bit-identical" : "DIVERGED");
        if (!identical)
            ++divergences;
    }
    sink.add("thread_divergences",
             static_cast<double>(divergences));
    if (divergences > 0)
        err("ablation_policies: %d polic%s diverged across "
            "threads\n", divergences,
            divergences == 1 ? "y" : "ies");

    sink.write();

    out("\nShape check: the policies separate in the harvesting "
        "regime; at starvation\nnobody delivers and at ample income "
        "every policy approaches the sampling\nbound, so the spread "
        "compresses toward 100%%.\n");

    if (divergences > 0)
        return 1;
    return smoke ? validateSink(sink) : 0;
}
