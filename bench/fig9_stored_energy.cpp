/**
 * @file
 * Reproduces Figure 9: stored energy level of three consecutive chain
 * nodes over 300 minutes of daytime solar, for the three systems.
 *
 * Paper shape: without load balancing the well-harvesting node's
 * capacitor is frequently full in the first ~50 minutes (income is
 * rejected); the baseline tree balancer keeps it lower by moving work
 * there; the proposed distributed balancer keeps it lowest.  The bench
 * prints each node's series (mJ, sampled every 10 min) plus overflow
 * totals, which quantify the rejected energy directly.
 */


#include "bench_util.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"

using namespace neofog;
using namespace neofog::bench;

int
main()
{
    header("Figure 9: stored energy of 3 consecutive nodes, 300 min "
           "daytime solar");

    const presets::SystemUnderTest systems[] = {
        presets::nosVp(),
        presets::nosNvpBaseline(),
        presets::fiosNeofog(),
    };

    // Pick the chain's strongest harvester and its two right-hand
    // neighbours (the paper plots three consecutive nodes, the first
    // of which harvests well).  Traces are seed-determined, so the
    // same physical nodes are compared across all three systems.
    std::size_t nodes_of_interest[3] = {0, 1, 2};
    {
        FogSystem scout(presets::fig9(presets::nosVp()));
        scout.run();
        std::size_t best = 0;
        double best_h = -1.0;
        for (std::size_t i = 0; i + 2 < 10; ++i) {
            const double h = scout.node(0, i)
                                 .stats().harvestedTotal.joules();
            if (h > best_h) {
                best_h = h;
                best = i;
            }
        }
        nodes_of_interest[0] = best;
        nodes_of_interest[1] = best + 1;
        nodes_of_interest[2] = best + 2;
    }

    ResultSink sink("fig9_stored_energy");
    for (const auto &sut : systems) {
        ScenarioConfig cfg = presets::fig9(sut);
        FogSystem system(cfg);
        system.run();

        out("\n%s (series in mJ, one sample / 10 min):\n",
                    sut.label.c_str());
        for (std::size_t ni : nodes_of_interest) {
            const Node &node = system.node(0, ni);
            const auto &series = node.stats().storedEnergyMj;
            out("  node %zu:", ni);
            const Tick step = 10 * kMin;
            Tick next = 0;
            for (const auto &pt : series.points()) {
                if (pt.when >= next) {
                    out(" %5.0f", pt.value);
                    next += step;
                }
            }
            const double overflow_mj =
                node.capacitor().overflowTotal().millijoules();
            double mean_mj = 0.0;
            for (const auto &pt : series.points())
                mean_mj += pt.value;
            if (!series.points().empty())
                mean_mj /= static_cast<double>(series.points().size());
            out("\n    overflow (rejected) total: %.1f mJ, "
                        "mean stored %.1f mJ\n", overflow_mj, mean_mj);
            const std::string key =
                keyify(sut.label) + "_node" + std::to_string(ni);
            sink.add(key + "_overflow_mj", overflow_mj);
            sink.add(key + "_mean_stored_mj", mean_mj);
        }
    }
    sink.write();

    out(
        "\nShape checks: (a) the ordinary nodes' mean stored level "
        "decreases from\nno-LB to baseline LB to the distributed "
        "balancer — their work is funded\nmore directly and their "
        "surplus ships to neighbours; (b) capacitor-full\nplateaus "
        "(250 mJ samples) and overflow concentrate at the strongest\n"
        "harvester, which the distributed balancer loads with the most "
        "received\ntasks.  Unlike the paper's deployment, our strongest "
        "node's income exceeds\nany absorbable load at this node "
        "density, so its own mean stays pinned\nhigh (see "
        "EXPERIMENTS.md).\n");
    return 0;
}
