/**
 * @file
 * Reproduces Figure 12: mountain-slide monitoring on a sunny day (high
 * power, large independent variance).  NVD4Q node multiplexing is swept
 * from 100% to 500%; the VP-without-LB system is the reference bar.
 *
 * Paper reference points: network collects ~12000 samples; VP processes
 * ~5000 in-fog-equivalent packages; NVP+distributed LB ~9500 (almost
 * 2x); multiplexing adds little because the in-fog processing rate is
 * already high.
 */


#include "bench_util.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"

using namespace neofog;
using namespace neofog::bench;

int
main()
{
    header("Figure 12: node multiplexing, high power with large "
           "independent variance (sunny mountain)");

    Table t({26, 12, 12, 12, 12});
    t.row({"System", "Sampled", "Processed", "InFog", "Yield"});
    t.separator();

    // Reference: traditional VP without load balancing.
    {
        FogSystem vp(presets::fig12(presets::nosVp(), 1));
        const SystemReport r = vp.run();
        t.row({"VP w/o LB (100%)",
               std::to_string(r.packagesSampled),
               std::to_string(r.totalProcessed()),
               std::to_string(r.packagesInFog),
               pct(r.yield())});
    }

    double processed_at[6] = {};
    for (int mux = 1; mux <= 5; ++mux) {
        FogSystem sys(presets::fig12(presets::fiosNeofog(), mux));
        const SystemReport r = sys.run();
        processed_at[mux] = static_cast<double>(r.totalProcessed());
        t.row({"NEOFog @ " + std::to_string(mux * 100) + "%",
               std::to_string(r.packagesSampled),
               std::to_string(r.totalProcessed()),
               std::to_string(r.packagesInFog),
               pct(r.yield())});
    }

    out("\nShape checks (paper): NEOFog@100%% is ~2x the VP "
                "reference; multiplexing\nbeyond 100%% adds little in "
                "high-power conditions (rate already high).\n");
    out("  gain 200%%/100%% = %.2fx (expect ~1.0x)\n",
                processed_at[2] / processed_at[1]);
    out("  gain 500%%/100%% = %.2fx (expect ~1.0x)\n",
                processed_at[5] / processed_at[1]);

    ResultSink sink("fig12_mux_high_power");
    for (int mux = 1; mux <= 5; ++mux) {
        sink.add("neofog_total_mux" + std::to_string(mux),
                 processed_at[mux]);
    }
    sink.add("gain_200_vs_100", processed_at[2] / processed_at[1]);
    sink.add("gain_500_vs_100", processed_at[5] / processed_at[1]);
    sink.write();
    return 0;
}
