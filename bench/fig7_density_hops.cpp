/**
 * @file
 * Reproduces Figure 7: naive density increase does not boost Zigbee
 * QoS.  With 10 chain nodes a packet crosses end to end in 9 hops;
 * quadrupling the node density makes the locality-preferring Zigbee
 * routing take ~25 short hops.  NVD4Q instead clones node state, so the
 * *virtual* chain keeps its 9 logical hops at any density.
 */


#include "bench_util.hh"
#include "net/topology.hh"
#include "sim/rng.hh"
#include "virt/nvd4q.hh"

using namespace neofog;
using namespace neofog::bench;

int
main()
{
    header("Figure 7: chain hop count vs node density (Zigbee greedy "
           "routing)");

    const std::size_t n_logical = 10;
    const double spacing = 12.0;  // meters between logical sites
    const double range = 18.0;    // radio range
    const double scatter = 5.5;   // physical scatter at 4x density

    Table t({34, 12, 14});
    t.row({"Deployment", "Nodes", "Hops end-to-end"});
    t.separator();

    ResultSink sink("fig7_density_hops");

    // Baseline: 10 nodes, 9 hops.
    ChainMesh base = ChainMesh::makeLinear(n_logical, spacing);
    const auto base_route =
        base.greedyRoute(0, n_logical - 1, range);
    t.row({"10 nodes (baseline)", "10",
           std::to_string(ChainMesh::hopCount(base_route))});
    sink.add("baseline_hops",
             static_cast<double>(ChainMesh::hopCount(base_route)));

    // 4x density, naive Zigbee: locality preference inflates hops.
    Rng rng(77);
    for (int density : {2, 4}) {
        ChainMesh dense = ChainMesh::makeDenseChain(
            n_logical, density, spacing, scatter, rng);
        const std::size_t last_anchor =
            (n_logical - 1) * static_cast<std::size_t>(density);
        const auto route = dense.greedyRoute(0, last_anchor, range);
        t.row({std::to_string(density) + "x density, naive Zigbee",
               std::to_string(dense.size()),
               std::to_string(ChainMesh::hopCount(route))});
        sink.add("naive_hops_density" + std::to_string(density),
                 static_cast<double>(ChainMesh::hopCount(route)));
    }

    // 4x density with NVD4Q: clones share the anchor's identity, so
    // the virtual chain still routes across 10 logical nodes.
    {
        Rng rng2(77);
        ChainMesh dense =
            ChainMesh::makeDenseChain(n_logical, 4, spacing, scatter,
                                      rng2);
        const auto groups = Nvd4qManager::formGroups(dense, n_logical, 4);
        // Virtual route: anchor positions only (one per logical node).
        std::vector<NodePos> anchors;
        for (const auto &g : groups)
            anchors.push_back(dense.position(g.members().front()));
        ChainMesh virtual_chain(anchors);
        const auto route =
            virtual_chain.greedyRoute(0, n_logical - 1, range);
        t.row({"4x density + NVD4Q (virtual)",
               std::to_string(dense.size()) + " phys",
               std::to_string(ChainMesh::hopCount(route))});
        sink.add("nvd4q_hops_density4",
                 static_cast<double>(ChainMesh::hopCount(route)));
    }
    sink.write();

    out("\nShape check (paper): 9 hops at baseline; ~25 hops at"
                " 4x density under naive\nZigbee; NVD4Q keeps the"
                " virtual chain at 9 hops regardless of density.\n");
    return 0;
}
