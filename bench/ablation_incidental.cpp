/**
 * @file
 * Ablation: incidental computing (paper §5.1, citing [47]).
 *
 * When a node lacks the energy for a full fog task, the buffered
 * sample is normally discarded.  With incidental computing it runs a
 * reduced-fidelity summary instead.  This bench compares the NEOFog
 * system with and without the technique across power regimes; the
 * recovered (incidental) packages matter most when energy is scarce.
 */


#include "bench_util.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"

using namespace neofog;
using namespace neofog::bench;

int
main()
{
    header("Ablation: incidental computing on the NEOFog system");

    struct Regime
    {
        const char *label;
        TraceKind kind;
        double mean_mw;
    };
    const Regime regimes[] = {
        {"rain (very low, dependent)", TraceKind::RainLow, 0.75},
        {"forest (moderate, indep.)", TraceKind::ForestIndependent,
         2.6},
        {"sunny mountain (ample)", TraceKind::MountainSunny, 7.0},
    };

    Table t({30, 10, 9, 18, 20, 8});
    t.row({"Regime", "Full fog", "Incid.", "Discarded", "Useful total",
           "Gain"});
    t.separator();

    ResultSink sink("ablation_incidental");
    for (const Regime &regime : regimes) {
        std::uint64_t totals[2] = {};
        std::uint64_t fog[2] = {}, incidental[2] = {}, discarded[2] = {};
        for (int enabled = 0; enabled < 2; ++enabled) {
            ScenarioConfig cfg =
                presets::fig13(presets::fiosNeofog(), 1);
            cfg.traceKind = regime.kind;
            cfg.meanIncome = Power::fromMilliwatts(regime.mean_mw);
            cfg.nodeTemplate.enableIncidentalComputing = enabled == 1;
            cfg.seed = 42;
            FogSystem sys(cfg);
            const SystemReport r = sys.run();
            fog[enabled] = r.packagesInFog;
            incidental[enabled] = r.packagesIncidental;
            totals[enabled] = r.packagesInFog + r.packagesIncidental;
            std::uint64_t disc = 0;
            for (std::size_t i = 0; i < 10; ++i)
                disc += sys.node(0, i)
                            .stats().samplesDiscarded.value();
            discarded[enabled] = disc;
        }
        const double gain = totals[0]
            ? static_cast<double>(totals[1]) /
              static_cast<double>(totals[0])
            : 0.0;
        t.row({regime.label, std::to_string(fog[1]),
               std::to_string(incidental[1]),
               std::to_string(discarded[1]) + " (was " +
                   std::to_string(discarded[0]) + ")",
               std::to_string(totals[1]) + " (was " +
                   std::to_string(totals[0]) + ")",
               fmt(gain, 2) + "x"});
        const std::string key = keyify(regime.label);
        sink.add(key + "_useful_with", static_cast<double>(totals[1]));
        sink.add(key + "_useful_without",
                 static_cast<double>(totals[0]));
        sink.add(key + "_gain", gain);
    }
    sink.write();

    out("\nShape check: incidental summaries recover otherwise-"
                "discarded samples, with\nthe largest relative gain in "
                "the scarcest power regime.\n");
    return 0;
}
