/**
 * @file
 * Ablation: MAC-abstracted delivery vs hop-by-hop relaying.
 *
 * The paper's simulator "mimics communication by direct data
 * transmission ... through virtual buffers" (§4), treating multi-hop
 * relay as a MAC-layer concern.  This ablation quantifies what that
 * abstraction hides: with explicit hop-by-hop relaying toward the
 * sink, intermediate nodes pay RX+TX for every packet that crosses
 * them, producing the classic WSN funnel effect — nodes next to the
 * sink burn far more radio energy than the chain's far end.  NEOFog's
 * tiny compressed results keep that tax small; raw-shipping VP chains
 * feel it hard.
 */


#include "bench_util.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"

using namespace neofog;
using namespace neofog::bench;

namespace {

void
runOne(ResultSink &sink, const presets::SystemUnderTest &sut,
       bool relay)
{
    ScenarioConfig cfg = presets::fig10(sut, 0);
    cfg.hopByHopRelay = relay;
    cfg.meanIncome = Power::fromMilliwatts(5.0);
    cfg.seed = 3;
    FogSystem sys(cfg);
    const SystemReport r = sys.run();

    out("  %-14s %-10s total %5llu  relay hops %6llu  "
                "drops %4llu\n",
                sut.label.c_str(), relay ? "hop-by-hop" : "direct",
                static_cast<unsigned long long>(r.totalProcessed()),
                static_cast<unsigned long long>(r.relayHops),
                static_cast<unsigned long long>(r.relayDrops));
    const std::string key =
        keyify(sut.label) + (relay ? "_relay" : "_direct");
    sink.add(key + "_total", static_cast<double>(r.totalProcessed()));
    if (relay)
        sink.add(key + "_hops", static_cast<double>(r.relayHops));
    if (relay) {
        out("    radio energy by chain position (mJ):");
        for (std::size_t i = 1; i < 10; ++i) {
            const auto &st = sys.node(0, i).stats();
            out(" %5.0f", st.spentTx.millijoules() +
                                      st.spentRx.millijoules());
        }
        out("\n");
    }
}

} // namespace

int
main()
{
    header("Ablation: direct (MAC-abstracted) vs hop-by-hop relay "
           "delivery");

    ResultSink sink("ablation_relay_funnel");
    for (const auto &sut :
         {presets::nosVp(), presets::fiosNeofog()}) {
        runOne(sink, sut, false);
        runOne(sink, sut, true);
    }

    out("\nShape check: relaying taxes the chain near the sink "
                "(funnel effect), and the\ntax scales with payload — "
                "the VP's raw packets suffer far more than NEOFog's\n"
                "compressed results, reinforcing the case for in-fog "
                "processing.\n");
    sink.write();
    return 0;
}
