/**
 * @file
 * Ablation: NVP-FIOS vs VP-NOS forward progress under intermittent
 * power (the §2.2 claim, from Ma et al. [47]: "2.2X to 5X depending on
 * the power profile at hand").
 *
 * Sweeps power profiles from a starved flicker to ample steady supply
 * and reports committed instructions, waste, power cycles, and the
 * NVP/VP ratio — showing both the 2.2-5x band in harvesting regimes
 * and its collapse toward 1x when power is stable and ample (NVPs are
 * better "if only in unstable power environments").
 */

#include <cstdio>
#include <memory>

#include "bench_util.hh"
#include "energy/power_trace.hh"
#include "node/intermittent.hh"
#include "sim/rng.hh"

using namespace neofog;
using namespace neofog::bench;

int
main()
{
    header("Forward progress: NVP (FIOS front end) vs VP (NOS front "
           "end), 10 min horizon");

    const Tick horizon = 10 * kMin;

    struct Profile
    {
        std::string label;
        std::unique_ptr<PowerTrace> trace;
    };
    std::vector<Profile> profiles;

    {
        Rng rng(11);
        profiles.push_back({"piezo bursts (0.5 mW pulses)",
                            traces::makePiezoTrace(rng, horizon,
                                                   Power::fromMilliwatts(
                                                       0.5),
                                                   30.0)});
    }
    for (double mw : {0.05, 0.1, 0.2, 0.5, 1.0, 2.0}) {
        Rng rng(17);
        char label[64];
        std::snprintf(label, sizeof(label), "forest solar %.2f mW",
                      mw);
        profiles.push_back(
            {label, traces::makeForestTrace(
                        rng, horizon, Power::fromMilliwatts(mw))});
    }
    profiles.push_back({"steady 2 mW (bench supply)",
                        std::make_unique<ConstantTrace>(
                            Power::fromMilliwatts(2.0))});

    Table t({30, 13, 13, 12, 10, 9});
    t.row({"Power profile", "NVP inst", "VP inst", "VP wasted",
           "Cycles", "Ratio"});
    t.separator();

    ResultSink sink("ablation_forward_progress");
    IntermittentExecution::Config cfg;
    for (const Profile &p : profiles) {
        NvProcessor nvp{NvProcessor::fiosConfig()};
        VolatileProcessor vp;
        auto nv_cfg = cfg;
        nv_cfg.frontend = FrontEnd::makeFios().config();
        auto vp_cfg = cfg;
        vp_cfg.frontend = FrontEnd::makeNos().config();
        const auto rn = IntermittentExecution::run(nvp, *p.trace,
                                                   horizon, nv_cfg);
        const auto rv = IntermittentExecution::run(vp, *p.trace,
                                                   horizon, vp_cfg);
        const double ratio = rv.instructionsCompleted
            ? static_cast<double>(rn.instructionsCompleted) /
              static_cast<double>(rv.instructionsCompleted)
            : 0.0;
        t.row({p.label, std::to_string(rn.instructionsCompleted),
               std::to_string(rv.instructionsCompleted),
               std::to_string(rv.instructionsWasted),
               std::to_string(rv.powerCycles),
               ratio > 0.0 ? fmt(ratio, 2) + "x" : "inf"});
        sink.add(keyify(p.label) + "_nvp_vs_vp", ratio);
    }
    sink.write();

    out("\nShape check (paper §2.2, citing [47]): 2.2x-5x more "
                "forward progress in\nharvesting regimes; the advantage "
                "shrinks toward 1x under ample stable power.\n");
    return 0;
}
