/**
 * @file
 * Reproduces Figure 8: the NVD4Q wake-up pattern.
 *
 * "At each wake-up period, only nodes with a common phase wake up.
 * Nodes in chain 1 to 5 wake up consecutively... From the network's
 * perspective, the network structure and information does not change
 * during power off period."  This bench prints the rotation grid for
 * five 3x-multiplexed chains and verifies the schedule invariants the
 * figure illustrates.
 */


#include "bench_util.hh"
#include "net/topology.hh"
#include "sim/rng.hh"
#include "virt/nvd4q.hh"

using namespace neofog;
using namespace neofog::bench;

int
main()
{
    header("Figure 8: NVD4Q slotted wake-up pattern (5 chains x 10 "
           "logical nodes, 3x mux)");

    const std::size_t n_logical = 10;
    const int mux = 3;
    const std::size_t n_chains = 5;

    // Independent clone groups per chain (same structure each).
    std::vector<std::vector<CloneGroup>> chains;
    Rng rng(8);
    for (std::size_t c = 0; c < n_chains; ++c) {
        ChainMesh mesh = ChainMesh::makeDenseChain(n_logical, mux,
                                                   12.0, 4.0, rng);
        chains.push_back(
            Nvd4qManager::formGroups(mesh, n_logical, mux));
    }

    out("Active clone (phase index) per slot, chain 1, "
                "logical nodes 1..10:\n\n  slot:");
    for (int s = 0; s < 9; ++s)
        out("  %2d", s);
    out("\n");
    for (std::size_t l = 0; l < n_logical; ++l) {
        out("  n%02zu :", l + 1);
        for (std::int64_t s = 0; s < 9; ++s) {
            const std::size_t member =
                chains[0][l].memberForSlot(s);
            out("   %d",
                        static_cast<int>(member % static_cast<std::size_t>(mux)));
        }
        out("\n");
    }

    // Invariants of the figure.
    bool common_phase = true;
    for (std::int64_t s = 0; s < 30 && common_phase; ++s) {
        const int phase0 = static_cast<int>(
            chains[0][0].memberForSlot(s) % static_cast<std::size_t>(mux));
        for (std::size_t l = 1; l < n_logical; ++l) {
            if (static_cast<int>(chains[0][l].memberForSlot(s) %
                                 static_cast<std::size_t>(mux)) != phase0)
                common_phase = false;
        }
    }
    out("\n  only nodes with a common phase wake per slot: "
                "%s\n", common_phase ? "yes" : "NO");

    // Each physical clone activates 1/mux as often as a logical node.
    int activations = 0;
    const std::size_t watch = chains[0][4].members()[1];
    for (std::int64_t s = 0; s < 30; ++s) {
        if (chains[0][4].memberForSlot(s) == watch)
            ++activations;
    }
    out("  physical clone activations over 30 slots: %d "
                "(expected %d at %dx mux)\n", activations, 30 / mux,
                mux);
    out("  network (virtual) topology changes across the "
                "rotation: none — clones\n  share the anchor's NVRF "
                "state, so no reconstruction penalty exists.\n");

    ResultSink sink("fig8_wake_pattern");
    sink.add("common_phase_invariant", common_phase ? 1.0 : 0.0);
    sink.add("clone_activations_30_slots",
             static_cast<double>(activations));
    sink.add("expected_activations",
             static_cast<double>(30 / mux));
    sink.write();
    return 0;
}
