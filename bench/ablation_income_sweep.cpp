/**
 * @file
 * Ablation: where do NEOFog's gains live on the income axis?
 *
 * Sweeps the mean ambient income and reports each system's yield,
 * exposing the crossover structure behind the paper's scenarios:
 *  - at starvation nobody delivers;
 *  - through the harvesting regime NEOFog's advantage peaks (the
 *    Fig 10/11/13 operating points);
 *  - with ample income all systems approach the sampling bound and the
 *    relative advantage compresses (the Fig 12 regime).
 */


#include "bench_util.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"

using namespace neofog;
using namespace neofog::bench;

int
main()
{
    header("Ablation: yield vs mean income (forest traces, 10 nodes, "
           "5 h)");

    const presets::SystemUnderTest systems[] = {
        presets::nosVp(),
        presets::nosNvpBaseline(),
        presets::fiosNeofog(),
    };

    Table t({12, 12, 12, 12, 14, 14});
    t.row({"Income mW", "VP", "NVP+tree", "NEOFog", "NEOFog/VP",
           "NEOFog/NVP"});
    t.separator();

    ResultSink sink("ablation_income_sweep");
    for (double mw : {0.2, 0.5, 1.0, 2.0, 2.6, 4.0, 6.0, 10.0, 16.0}) {
        double totals[3] = {};
        for (int si = 0; si < 3; ++si) {
            ScenarioConfig cfg = presets::fig10(systems[si], 0);
            cfg.meanIncome = Power::fromMilliwatts(mw);
            cfg.seed = 7;
            FogSystem sys(cfg);
            totals[si] =
                static_cast<double>(sys.run().totalProcessed());
        }
        t.row({fmt(mw, 1), fmt(totals[0], 0), fmt(totals[1], 0),
               fmt(totals[2], 0),
               totals[0] > 0.0 ? fmt(totals[2] / totals[0], 2) + "x"
                               : "inf",
               totals[1] > 0.0 ? fmt(totals[2] / totals[1], 2) + "x"
                               : "inf"});
        const std::string key = keyify(fmt(mw, 1)) + "mw";
        sink.add("neofog_total_" + key, totals[2]);
        sink.add("neofog_vs_vp_" + key,
                 totals[0] > 0.0 ? totals[2] / totals[0] : 0.0);
    }
    sink.write();

    out("\nShape check: the NEOFog advantage is largest in the "
                "harvesting regime and\ncompresses toward 1x as every "
                "system approaches the 15000-package sampling\nbound.\n");
    return 0;
}
