/**
 * @file
 * Reproduces Table 2: measured energy distribution of the five deployed
 * applications under the naive and buffered strategies.
 *
 * Two parts:
 *  1. The analytic table, regenerated from the model constants
 *     (2.508 nJ/instruction, 2851.2 nJ/byte TX) and the paper's own
 *     formulas (4)-(6).  Every cell should match the paper.
 *  2. A kernel-backed validation: the real fog pipelines run on
 *     synthetic sensor batches, reporting the *achieved* compression
 *     ratio and operation counts, confirming the modeled ratios are
 *     attainable with actual computation.
 */


#include "bench_util.hh"
#include "sim/rng.hh"
#include "workload/app_profile.hh"
#include "workload/fog_task.hh"

using namespace neofog;
using namespace neofog::bench;

namespace {

struct PaperRow
{
    double computeNj, txNj;
    double naiveRatio;
    double computeMj, txMj;
    double bufferedRatio;
    double saved;
};

// Table 2 as printed in the paper, for side-by-side comparison.
const PaperRow kPaper[5] = {
    {1366.86, 22809.6, 0.0565, 81.7, 6.95, 0.922, -0.552},
    {1153.68, 5702.4, 0.168, 108.3, 6.8, 0.941, -0.488},
    {140.448, 5702.4, 0.024, 75.0, 6.99, 0.915, -0.571},
    {1196.316, 17107.2, 0.0653, 83.6, 6.59, 0.927, -0.549},
    {4188.36, 2851.2, 0.595, 345.1, 5.39, 0.985, -0.241},
};

} // namespace

int
main()
{
    header("Table 2 (analytic): energy distribution, naive vs buffered "
           "strategy");
    Table t({18, 8, 13, 13, 9, 13, 11, 9, 10});
    t.row({"App", "Inst.", "Cmp nJ", "TX nJ", "Ratio", "Cmp mJ",
           "TX mJ", "Ratio", "Saved"});
    t.separator();

    ResultSink sink("table2_energy");
    const auto profiles = allAppProfiles();
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const AppProfile &p = profiles[i];
        sink.add(keyify(p.name) + "_naive_compute_ratio",
                 p.naiveComputeRatio());
        sink.add(keyify(p.name) + "_buffered_compute_ratio",
                 p.bufferedComputeRatio());
        sink.add(keyify(p.name) + "_energy_saved_ratio",
                 p.energySavedRatio());
        t.row({
            p.name,
            std::to_string(p.naiveInstructions),
            fmt(p.naiveComputeEnergy().nanojoules(), 2),
            fmt(p.naiveTxEnergy().nanojoules(), 1),
            pct(p.naiveComputeRatio()),
            fmt(p.bufferedComputeEnergy().millijoules(), 1),
            fmt(p.bufferedTxEnergy().millijoules(), 2),
            pct(p.bufferedComputeRatio()),
            pct(p.energySavedRatio()),
        });
    }

    header("Paper values for comparison");
    Table tp({18, 8, 13, 13, 9, 13, 11, 9, 10});
    tp.row({"App", "Inst.", "Cmp nJ", "TX nJ", "Ratio", "Cmp mJ",
            "TX mJ", "Ratio", "Saved"});
    tp.separator();
    const char *names[5] = {"Bridge Health", "UV Meter", "WSN-Temp.",
                            "WSN-Accel.", "Pattern Matching"};
    for (int i = 0; i < 5; ++i) {
        const PaperRow &r = kPaper[i];
        tp.row({
            names[i], "-",
            fmt(r.computeNj, 2), fmt(r.txNj, 1), pct(r.naiveRatio),
            fmt(r.computeMj, 1), fmt(r.txMj, 2), pct(r.bufferedRatio),
            pct(r.saved),
        });
    }

    header("Kernel-backed validation: real pipelines on synthetic "
           "batches (16 kB)");
    Table tv({18, 20, 14, 16, 14});
    tv.row({"App", "Pipeline", "Ops", "Achieved comp.", "Metric"});
    tv.separator();
    Rng rng(2018);
    for (AppKind kind : kAllApps) {
        auto task = makeFogTask(kind);
        const FogOutput out = task->processBatch(16 * 1024, rng);
        tv.row({
            appName(kind),
            task->name(),
            std::to_string(out.opsExecuted),
            pct(out.achievedRatio()),
            fmt(out.metric, 3),
        });
        sink.add(keyify(appName(kind)) + "_achieved_ratio",
                 out.achievedRatio());
    }
    sink.write();
    out("\nNote: achieved compression operates on the pipeline's"
                " *result* payloads\n(strength records, beat positions,"
                " aggregates), which is why results stay\nwithin the"
                " paper's 3-14.5%% window even for short batches.\n");
    return 0;
}
