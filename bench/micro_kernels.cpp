/**
 * @file
 * google-benchmark microbenchmarks for the library's hot kernels:
 * the Algorithm 1 DP (O(n*MAXTIME) scaling), the event queue, the FFT,
 * the compressor, and a full FogSystem slot loop — plus a hand-timed
 * capacitor-update micro section comparing the scalar slot-boundary
 * banking path (Node::beginSlotWithIncome) against the vectorized
 * ShardSlotKernel on one shard, reported in ns/node-slot and written
 * to BENCH_micro_kernels.json (scripts/bench-trend gates the speedup).
 *
 * Options:
 *   --smoke   run only the capacitor micro section at a shrunk size,
 *             then validate the emitted JSON (the CI gate mode);
 *             everything else is forwarded to google-benchmark.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "balance/assignment.hh"
#include "bench_util.hh"
#include "energy/power_trace.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"
#include "kernels/compress.hh"
#include "kernels/fft.hh"
#include "kernels/signal_gen.hh"
#include "node/node.hh"
#include "node/shard_kernel.hh"
#include "sim/event_queue.hh"
#include "sim/report_io.hh"
#include "sim/rng.hh"

using namespace neofog;
using namespace neofog::bench;

namespace {

void
BM_Algorithm1(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto max_time = state.range(1);
    Rng rng(7);
    std::vector<std::int64_t> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng.uniformInt(1, 10);
        b[i] = rng.uniformInt(1, 10);
    }
    for (auto _ : state) {
        auto r = assignTasks(a, b, max_time);
        benchmark::DoNotOptimize(r);
    }
    state.SetComplexityN(static_cast<std::int64_t>(n) * max_time);
}
BENCHMARK(BM_Algorithm1)
    ->Args({8, 64})
    ->Args({32, 256})
    ->Args({128, 1024})
    ->Args({512, 4096})
    ->Complexity(benchmark::oN);

void
BM_EventQueue(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        EventQueue q;
        Rng rng(1);
        for (std::size_t i = 0; i < n; ++i)
            q.schedule(static_cast<Tick>(rng.uniformInt(0, 1'000'000)),
                       [] {});
        q.runAll();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                            state.iterations());
}
BENCHMARK(BM_EventQueue)->Arg(1024)->Arg(16384)->Arg(131072);

void
BM_Fft(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(3);
    auto sig = kernels::bridgeVibration(rng, n, 100.0, 1.2);
    for (auto _ : state) {
        auto spec = kernels::magnitudeSpectrum(sig);
        benchmark::DoNotOptimize(spec);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                            state.iterations());
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void
BM_Compress(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(5);
    const auto sig = kernels::temperatureSignal(rng, n / 2, 20.0, 8.0);
    const auto bytes = kernels::quantize16(sig, -40.0, 85.0);
    for (auto _ : state) {
        auto out = kernels::compress(bytes);
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(bytes.size()) *
                            state.iterations());
}
BENCHMARK(BM_Compress)->Arg(1024)->Arg(16384)->Arg(65536);

void
BM_FogSystemSlotLoop(benchmark::State &state)
{
    const auto nodes = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        ScenarioConfig cfg =
            presets::fig10(presets::fiosNeofog(), 0);
        cfg.nodesPerChain = 10;
        cfg.chains = nodes / 10;
        cfg.horizon = 30 * kMin;
        FogSystem sys(cfg);
        auto r = sys.run();
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(nodes) * 150 * state.iterations());
}
BENCHMARK(BM_FogSystemSlotLoop)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Capacitor-update micro: scalar banking vs the vectorized shard
// kernel, head to head on one chain-shaped shard.
// ---------------------------------------------------------------------

/** One shard of FIOS nodes on scaled constant income (chain shape). */
struct MicroShard
{
    NodeShard shard;
    std::vector<std::unique_ptr<Node>> nodes;
};

void
buildMicroShard(MicroShard &m, std::size_t rows)
{
    m.shard.reserveRows(rows, 1);
    m.nodes.reserve(rows);
    Rng rng(20260808);
    for (std::size_t i = 0; i < rows; ++i) {
        Node::Config cfg;
        cfg.id = static_cast<std::uint32_t>(i);
        cfg.mode = OperatingMode::FiosNvMote;
        auto trace = std::make_unique<ConstantTrace>(
            Power::fromMilliwatts(2.2 * rng.uniform(0.5, 1.5)));
        m.nodes.push_back(std::make_unique<Node>(
            cfg, std::move(trace), rng.fork(), m.shard));
    }
}

/**
 * Per-row end state the banking arithmetic touches; two shards that
 * executed the same slots must agree on every field bit for bit.
 */
bool
shardsIdentical(const MicroShard &a, const MicroShard &b)
{
    for (std::size_t i = 0; i < a.nodes.size(); ++i) {
        const Node &x = *a.nodes[i];
        const Node &y = *b.nodes[i];
        const bool same =
            x.capacitor().stored() == y.capacitor().stored() &&
            x.capacitor().chargedTotal() ==
                y.capacitor().chargedTotal() &&
            x.capacitor().overflowTotal() ==
                y.capacitor().overflowTotal() &&
            x.capacitor().leakedTotal() == y.capacitor().leakedTotal() &&
            x.rtc().desyncCount() == y.rtc().desyncCount() &&
            x.lastSlotIncome() == y.lastSlotIncome() &&
            x.lastAccrualTime() == y.lastAccrualTime() &&
            x.stats().harvestedTotal == y.stats().harvestedTotal;
        if (!same)
            return false;
    }
    return true;
}

/**
 * Run @p slots consecutive slot boundaries over @p m and return the
 * wall-clock seconds.  @p first_slot keeps repeated timings advancing
 * (both paths must see the same boundary times to stay comparable).
 */
template <class Step>
double
timeSlots(std::int64_t first_slot, std::int64_t slots, Tick slot_len,
          Step &&step)
{
    const auto start = std::chrono::steady_clock::now();
    for (std::int64_t s = first_slot; s < first_slot + slots; ++s)
        step(static_cast<Tick>(s) * slot_len);
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Re-read the emitted JSON and check it against the schema. */
int
validateSink(const ResultSink &sink)
{
    std::ifstream in(sink.path());
    if (!in) {
        err("micro_kernels: cannot re-read %s\n", sink.path().c_str());
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
        const auto doc = report_io::parseJson(text.str());
        const std::string schema_err = report_io::validateBenchJson(doc);
        if (!schema_err.empty()) {
            err("micro_kernels: schema violation: %s\n",
                schema_err.c_str());
            return 1;
        }
    } catch (const FatalError &e) {
        err("micro_kernels: emitted invalid JSON: %s\n", e.what());
        return 1;
    }
    out("micro_kernels: %s validates against neofog-bench-v1\n",
        sink.path().c_str());
    return 0;
}

int
runCapacitorMicro(bool smoke)
{
    const std::size_t rows = smoke ? 4'096 : 16'384;
    const std::int64_t slots = smoke ? 64 : 128;
    const int reps = 3;
    const Tick slot_len = 12 * kSec;

    header("Capacitor update: scalar banking vs vectorized shard "
           "kernel (" +
           std::to_string(rows) + " nodes x " + std::to_string(slots) +
           " slots x " + std::to_string(reps) + " reps)");

    // Two identically built shards: one advanced by the per-node
    // scalar path, one by the kernel.  Rep r of each path executes the
    // same slot boundaries, so the end states must match bit for bit.
    MicroShard scalar_shard;
    MicroShard kernel_shard;
    buildMicroShard(scalar_shard, rows);
    buildMicroShard(kernel_shard, rows);

    // The income integrals are hoisted exactly as ChainEngine's
    // batched beginSlot does: constant traces make every slot's
    // integral the same Energy, computed once per node here.
    std::vector<Energy> slot_income;
    slot_income.reserve(rows);
    for (const auto &n : scalar_shard.nodes)
        slot_income.push_back(n->trace().integrate(0, slot_len));

    const ShardSlotKernelParams params = ShardSlotKernelParams::fromConfigs(
        kernel_shard.nodes.front()->config().cap,
        kernel_shard.nodes.front()->config().rtc,
        kernel_shard.nodes.front()->frontend().config(),
        /*fios=*/true);
    ShardSlotKernel kernel(params);
    std::vector<ShardSlotKernel::Lane> lanes(rows);
    for (std::size_t i = 0; i < rows; ++i) {
        lanes[i].row = kernel_shard.nodes[i]->shardRow();
        lanes[i].slotJoules = slot_income[i].joules();
    }

    // Consecutive boundaries (no gap windows): the pure banking
    // arithmetic, the loop the fleet sweep spends its time in.  Best
    // of `reps` per path; both paths advance through the same total
    // slot range so the final cross-check stays meaningful.
    double scalar_best = 0.0;
    double kernel_best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const std::int64_t first = r * slots;
        const double scalar_secs =
            timeSlots(first, slots, slot_len, [&](Tick t) {
                for (std::size_t i = 0; i < rows; ++i)
                    scalar_shard.nodes[i]->beginSlotWithIncome(
                        t, slot_len, Energy::zero(), slot_income[i]);
            });
        const double kernel_secs =
            timeSlots(first, slots, slot_len, [&](Tick t) {
                kernel.run(kernel_shard.shard, lanes, t, slot_len);
                for (const auto &n : kernel_shard.nodes)
                    n->rolloverSlotState();
            });
        scalar_best = r == 0 ? scalar_secs
                             : std::min(scalar_best, scalar_secs);
        kernel_best = r == 0 ? kernel_secs
                             : std::min(kernel_best, kernel_secs);
    }

    const bool identical = shardsIdentical(scalar_shard, kernel_shard);
    const double node_slots =
        static_cast<double>(rows) * static_cast<double>(slots);
    const double scalar_ns = scalar_best * 1e9 / node_slots;
    const double kernel_ns = kernel_best * 1e9 / node_slots;

    Table t({26, 18, 10});
    t.row({"Path", "ns/node-slot", "Speedup"});
    t.separator();
    t.row({"scalar beginSlot", fmt(scalar_ns, 1), "1.00x"});
    t.row({"vectorized shard kernel", fmt(kernel_ns, 1),
           fmt(scalar_ns / kernel_ns, 2) + "x"});
    out("\nend states bit-identical: %s\n", identical ? "yes" : "NO");

    ResultSink sink("micro_kernels");
    sink.add("capacitor_rows", static_cast<double>(rows));
    sink.add("capacitor_slots",
             static_cast<double>(slots) * static_cast<double>(reps));
    sink.add("capacitor_scalar_ns_per_node_slot", scalar_ns);
    sink.add("capacitor_simd_ns_per_node_slot", kernel_ns);
    sink.add("capacitor_simd_speedup", scalar_ns / kernel_ns);
    sink.add("capacitor_identical", identical ? 1.0 : 0.0);
    if (smoke)
        sink.note("mode", "smoke");
    if (!identical) {
        err("micro_kernels: shard kernel diverged from the scalar "
            "banking path\n");
        return 1;
    }
    if (!sink.write())
        return 1;
    return smoke ? validateSink(sink) : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::vector<char *> bench_args;
    bench_args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else
            bench_args.push_back(argv[i]);
    }
    // Smoke mode is the CI gate: only the hand-timed micro section
    // (with its JSON sink + schema check) runs.  The google-benchmark
    // suite is the default interactive mode.
    if (!smoke) {
        int bench_argc = static_cast<int>(bench_args.size());
        benchmark::Initialize(&bench_argc, bench_args.data());
        if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                                   bench_args.data()))
            return 2;
        benchmark::RunSpecifiedBenchmarks();
        benchmark::Shutdown();
    }
    return runCapacitorMicro(smoke);
}
