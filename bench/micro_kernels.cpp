/**
 * @file
 * google-benchmark microbenchmarks for the library's hot kernels:
 * the Algorithm 1 DP (O(n*MAXTIME) scaling), the event queue, the FFT,
 * the compressor, and a full FogSystem slot loop.
 */

#include <benchmark/benchmark.h>

#include "balance/assignment.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"
#include "kernels/compress.hh"
#include "kernels/fft.hh"
#include "kernels/signal_gen.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

using namespace neofog;

namespace {

void
BM_Algorithm1(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto max_time = state.range(1);
    Rng rng(7);
    std::vector<std::int64_t> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng.uniformInt(1, 10);
        b[i] = rng.uniformInt(1, 10);
    }
    for (auto _ : state) {
        auto r = assignTasks(a, b, max_time);
        benchmark::DoNotOptimize(r);
    }
    state.SetComplexityN(static_cast<std::int64_t>(n) * max_time);
}
BENCHMARK(BM_Algorithm1)
    ->Args({8, 64})
    ->Args({32, 256})
    ->Args({128, 1024})
    ->Args({512, 4096})
    ->Complexity(benchmark::oN);

void
BM_EventQueue(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        EventQueue q;
        Rng rng(1);
        for (std::size_t i = 0; i < n; ++i)
            q.schedule(static_cast<Tick>(rng.uniformInt(0, 1'000'000)),
                       [] {});
        q.runAll();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                            state.iterations());
}
BENCHMARK(BM_EventQueue)->Arg(1024)->Arg(16384)->Arg(131072);

void
BM_Fft(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(3);
    auto sig = kernels::bridgeVibration(rng, n, 100.0, 1.2);
    for (auto _ : state) {
        auto spec = kernels::magnitudeSpectrum(sig);
        benchmark::DoNotOptimize(spec);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                            state.iterations());
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void
BM_Compress(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(5);
    const auto sig = kernels::temperatureSignal(rng, n / 2, 20.0, 8.0);
    const auto bytes = kernels::quantize16(sig, -40.0, 85.0);
    for (auto _ : state) {
        auto out = kernels::compress(bytes);
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(bytes.size()) *
                            state.iterations());
}
BENCHMARK(BM_Compress)->Arg(1024)->Arg(16384)->Arg(65536);

void
BM_FogSystemSlotLoop(benchmark::State &state)
{
    const auto nodes = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        ScenarioConfig cfg =
            presets::fig10(presets::fiosNeofog(), 0);
        cfg.nodesPerChain = 10;
        cfg.chains = nodes / 10;
        cfg.horizon = 30 * kMin;
        FogSystem sys(cfg);
        auto r = sys.run();
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(nodes) * 150 * state.iterations());
}
BENCHMARK(BM_FogSystemSlotLoop)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
