/**
 * @file
 * Reproduces the paper's headline claims (§1, §7):
 *
 *  "Collectively, the NV-aware optimizations in NEOFog increase the
 *   ability to perform in-fog processing by 4.2X and can increase this
 *   to 8X if virtualized nodes are 3X multiplexed."
 *
 * The 4.2x figure is the in-fog processing gain of the full NEOFog
 * stack over the VP baseline in the low-power (rain) deployment where
 * QoS matters most; 8x adds 3x NVD4Q multiplexing.  This bench also
 * prints the per-technique contribution ladder (FIOS alone, +LB,
 * +NVD4Q) as an ablation.
 */

#include <cstdio>

#include "bench_util.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"

using namespace neofog;
using namespace neofog::bench;

namespace {

double
runTotal(const ScenarioConfig &cfg)
{
    FogSystem sys(cfg);
    return static_cast<double>(sys.run().totalProcessed());
}

} // namespace

int
main()
{
    header("Headline: in-fog processing gains of the NEOFog stack "
           "(low-power deployment)");

    // Reference: traditional VP, no load balance, rain scenario.
    const double vp = runTotal(presets::fig13(presets::nosVp(), 1));

    // Ablation ladder.
    presets::SystemUnderTest fios_nolb = presets::fiosNeofog();
    fios_nolb.balancerPolicy = "none";
    fios_nolb.label = "FIOS (no LB)";
    const double fios = runTotal(presets::fig13(fios_nolb, 1));

    presets::SystemUnderTest fios_tree = presets::fiosNeofog();
    fios_tree.balancerPolicy = "tree";
    fios_tree.label = "FIOS + tree LB";
    const double fios_t = runTotal(presets::fig13(fios_tree, 1));

    const double neofog =
        runTotal(presets::fig13(presets::fiosNeofog(), 1));
    const double neofog3x =
        runTotal(presets::fig13(presets::fiosNeofog(), 3));

    Table t({34, 14, 12});
    t.row({"System", "Processed", "vs VP"});
    t.separator();
    t.row({"NOS-VP (reference)", fmt(vp, 0), "1.00x"});
    t.row({"FIOS NV-mote, no LB", fmt(fios, 0), fmt(fios / vp, 2) + "x"});
    t.row({"FIOS + baseline tree LB", fmt(fios_t, 0),
           fmt(fios_t / vp, 2) + "x"});
    t.row({"FIOS + distributed LB (NEOFog)", fmt(neofog, 0),
           fmt(neofog / vp, 2) + "x"});
    t.row({"NEOFog + 3x NVD4Q multiplexing", fmt(neofog3x, 0),
           fmt(neofog3x / vp, 2) + "x"});

    std::printf("\nHeadline checks (paper in parentheses):\n");
    std::printf("  NEOFog vs VP:        %.1fx (4.2x)\n", neofog / vp);
    std::printf("  NEOFog @3x vs VP:    %.1fx (8x)\n", neofog3x / vp);
    return 0;
}
