/**
 * @file
 * Reproduces the paper's headline claims (§1, §7):
 *
 *  "Collectively, the NV-aware optimizations in NEOFog increase the
 *   ability to perform in-fog processing by 4.2X and can increase this
 *   to 8X if virtualized nodes are 3X multiplexed."
 *
 * The 4.2x figure is the in-fog processing gain of the full NEOFog
 * stack over the VP baseline in the low-power (rain) deployment where
 * QoS matters most; 8x adds 3x NVD4Q multiplexing.  This bench also
 * prints the per-technique contribution ladder (FIOS alone, +LB,
 * +NVD4Q) as an ablation.
 *
 * Options:
 *   --hours X   override the horizon (default: preset's 5 h)
 *   --smoke     tiny-horizon run that re-reads the emitted JSON and
 *               validates it against the neofog-bench-v1 schema;
 *               exits nonzero on any serialization breakage (the
 *               bench_smoke ctest runs this, so schema drift fails
 *               tier-1 instead of silently corrupting trajectories)
 */

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_util.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"
#include "sim/logging.hh"
#include "sim/report_io.hh"

using namespace neofog;
using namespace neofog::bench;

namespace {

double
runTotal(ScenarioConfig cfg, double hours)
{
    if (hours > 0.0)
        cfg.horizon = ticksFromSeconds(hours * 3600.0);
    FogSystem sys(cfg);
    return static_cast<double>(sys.run().totalProcessed());
}

/** Re-read the emitted JSON and check it against the schema. */
int
validateSink(const ResultSink &sink)
{
    std::ifstream in(sink.path());
    if (!in) {
        err("bench_smoke: cannot re-read %s\n",
            sink.path().c_str());
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
        const auto doc = report_io::parseJson(text.str());
        const std::string schema_err = report_io::validateBenchJson(doc);
        if (!schema_err.empty()) {
            err("bench_smoke: schema violation: %s\n",
                schema_err.c_str());
            return 1;
        }
    } catch (const FatalError &e) {
        err("bench_smoke: emitted invalid JSON: %s\n",
            e.what());
        return 1;
    }
    out("bench_smoke: %s validates against "
                "neofog-bench-v1\n",
                sink.path().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    double hours = 0.0; // 0 = preset default
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
            hours = 0.25;
        } else if (std::strcmp(argv[i], "--hours") == 0 &&
                   i + 1 < argc) {
            hours = std::atof(argv[++i]);
        } else {
            err("usage: %s [--hours X] [--smoke]\n", argv[0]);
            return 2;
        }
    }

    header("Headline: in-fog processing gains of the NEOFog stack "
           "(low-power deployment)");

    // Reference: traditional VP, no load balance, rain scenario.
    const double vp =
        runTotal(presets::fig13(presets::nosVp(), 1), hours);

    // Ablation ladder.
    presets::SystemUnderTest fios_nolb = presets::fiosNeofog();
    fios_nolb.balancerPolicy = "none";
    fios_nolb.label = "FIOS (no LB)";
    const double fios =
        runTotal(presets::fig13(fios_nolb, 1), hours);

    presets::SystemUnderTest fios_tree = presets::fiosNeofog();
    fios_tree.balancerPolicy = "tree";
    fios_tree.label = "FIOS + tree LB";
    const double fios_t =
        runTotal(presets::fig13(fios_tree, 1), hours);

    const double neofog =
        runTotal(presets::fig13(presets::fiosNeofog(), 1), hours);
    const double neofog3x =
        runTotal(presets::fig13(presets::fiosNeofog(), 3), hours);

    Table t({34, 14, 12});
    t.row({"System", "Processed", "vs VP"});
    t.separator();
    t.row({"NOS-VP (reference)", fmt(vp, 0), "1.00x"});
    t.row({"FIOS NV-mote, no LB", fmt(fios, 0), fmt(fios / vp, 2) + "x"});
    t.row({"FIOS + baseline tree LB", fmt(fios_t, 0),
           fmt(fios_t / vp, 2) + "x"});
    t.row({"FIOS + distributed LB (NEOFog)", fmt(neofog, 0),
           fmt(neofog / vp, 2) + "x"});
    t.row({"NEOFog + 3x NVD4Q multiplexing", fmt(neofog3x, 0),
           fmt(neofog3x / vp, 2) + "x"});

    out("\nHeadline checks (paper in parentheses):\n");
    out("  NEOFog vs VP:        %.1fx (4.2x)\n", neofog / vp);
    out("  NEOFog @3x vs VP:    %.1fx (8x)\n", neofog3x / vp);

    ResultSink sink("headline_summary");
    sink.add("vp_total", vp);
    sink.add("fios_nolb_total", fios);
    sink.add("fios_tree_total", fios_t);
    sink.add("neofog_total", neofog);
    sink.add("neofog_3x_total", neofog3x);
    sink.add("neofog_vs_vp", vp > 0.0 ? neofog / vp : 0.0);
    sink.add("neofog_3x_vs_vp", vp > 0.0 ? neofog3x / vp : 0.0);
    if (smoke)
        sink.note("mode", "smoke");
    if (!sink.write())
        return 1;
    return smoke ? validateSink(sink) : 0;
}
