/**
 * @file
 * neofog_lint core: the static-analysis passes that enforce the
 * repository's determinism, layering, observability, hygiene, and
 * state-coverage invariants (DESIGN.md, "Static analysis & enforced
 * invariants").
 *
 * The engine is deliberately libclang-free.  It has two layers:
 *
 *  - a token/include scanner (lintFile): every rule decidable from a
 *    comment/string-stripped token stream plus the file's
 *    repository-relative path;
 *  - a lightweight declaration parser feeding a cross-translation-unit
 *    Model (collectFile), over which the semantic passes run
 *    (lintModel) once every file has been collected.
 *
 * Together they keep the tool a standalone C++17 library that builds
 * in milliseconds and runs over the whole tree as a ctest
 * (`ctest -L lint`).
 *
 * Rules (each suppressible per line via a trailing
 * `// neofog-lint: allow(<rule>): <justification>` comment):
 *
 *  - R1 `determinism`   — no ambient entropy (rand/random_device/
 *    time()/wall clocks/thread ids) and no RNG seeding outside the
 *    sanctioned per-chain fork points.
 *  - R2 `layering`      — `#include` edges between `src/` subsystems
 *    must follow the layer DAG.
 *  - R3 `observability` — no direct stdout/stderr writes in library
 *    (`src/`) or harness (`bench/`) code; all output goes through
 *    `report_io`/`metrics`/`logging` (or `bench_util`'s sink).
 *  - R4 `hygiene`       — headers carry a NEOFOG_* include guard (or
 *    `#pragma once`) and never say `using namespace`.
 *  - R5 `snapshot`      — every data member of a struct with a
 *    `serialize(Archive&)` is referenced inside that serialize() (or
 *    is const/reference, or carries allow(snapshot) naming it
 *    scratch/derived); registry-walked bodies delegate to R6.
 *  - R6 `metric`        — every member of a report struct backed by a
 *    MetricRegistry appears as a `&Report::member` MetricDef.
 *  - R7 `registry`      — every ParamSpec a policy registers is read
 *    in its builder and carries non-empty docs.
 *  - R8 `global`        — no mutable namespace-scope / static-local /
 *    class-static state in `src/` (race + determinism hazard under
 *    chain-parallel execution), sanctioned sinks allowlisted.
 */

#ifndef NEOFOG_TOOLS_LINT_HH
#define NEOFOG_TOOLS_LINT_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace neofog::lint {

/** The eight enforced rule families. */
enum class Rule {
    Determinism,   ///< R1: no ambient entropy / stray RNG seeding
    Layering,      ///< R2: includes follow the layer DAG
    Observability, ///< R3: output only via sanctioned sinks
    Hygiene,       ///< R4: header guards, no `using namespace`
    Snapshot,      ///< R5: serialize() covers every data member
    Metric,        ///< R6: report members carry a MetricDef
    Registry,      ///< R7: ParamSpecs are read and documented
    Global,        ///< R8: no mutable global/static state
};

/** Number of rule families (array sizing). */
constexpr int kRuleCount = 8;

/** Stable rule id used in diagnostics, e.g. "R1.determinism". */
const char *ruleId(Rule rule);

/** Short rule name as written in allow(...) trailers. */
const char *ruleName(Rule rule);

/** Parse a trailer rule name; returns false if unknown. */
bool ruleFromName(const std::string &name, Rule &out);

/**
 * True for the semantic rules (R5-R8) that run over the cross-file
 * Model: their findings — and therefore their suppression accounting —
 * are produced by lintModel, not lintFile.
 */
bool projectRule(Rule rule);

/** One diagnostic: a violation (or a malformed/unused suppression). */
struct Finding {
    std::string file;    ///< repository-relative path
    int line = 0;        ///< 1-based line number
    Rule rule = Rule::Hygiene;
    std::string message; ///< human-readable explanation
};

/** One honored `neofog-lint: allow(...)` trailer. */
struct Suppression {
    std::string file;
    int line = 0;
    Rule rule = Rule::Hygiene;
    std::string justification;
};

/** Accumulated result of linting one or more files. */
struct Result {
    std::vector<Finding> findings;        ///< unsuppressed violations
    std::vector<Suppression> suppressions; ///< honored allow() trailers
    int filesScanned = 0;
};

/**
 * Lint one file with the token passes (R1-R4).  @p rel_path is the
 * repository-relative path (it determines which rules and which layer
 * table apply); @p content is the full file text.  Appends to
 * @p result.  Well-formed trailers for the semantic rules (R5-R8) are
 * left alone here — collectFile records them and lintModel settles
 * whether they are honored or unused.
 */
void lintFile(const std::string &rel_path, const std::string &content,
              Result &result);

/** Cross-file declaration model filled by collectFile (model.hh). */
struct Model;

/**
 * Parse @p content's declarations into @p model: struct/class members
 * and serialize() bodies, MetricRegistry member-pointer declarations,
 * PolicyRegistry add({...}) registrations, mutable global/static
 * state, and R5-R8 suppression trailers.  Declaration extraction only
 * applies to `src/` paths; trailers are recorded for every path so a
 * misplaced one is still flagged unused.
 */
void collectFile(const std::string &rel_path,
                 const std::string &content, Model &model);

/** Run the semantic passes (R5-R8) over the collected model. */
void lintModel(const Model &model, Result &result);

/** True if @p rel_path is a file the linter knows how to scan. */
bool lintableFile(const std::string &rel_path);

/** Print findings (file:line: [id] message), suppressions, summary. */
void printReport(const Result &result, std::ostream &os);

/** Machine-readable findings: one neofog-lint-v1 JSON document. */
void printJson(const Result &result, std::ostream &os);

/**
 * GitHub workflow-command annotations (::error file=..,line=..) so the
 * CI lint lane surfaces file:line findings directly on PRs, plus a
 * one-line summary.
 */
void printGithub(const Result &result, std::ostream &os);

/** Exit code for a result: 0 clean, 1 violations. */
int exitCode(const Result &result);

/** Print the rule table (for --list-rules). */
void printRules(std::ostream &os);

} // namespace neofog::lint

#endif // NEOFOG_TOOLS_LINT_HH
