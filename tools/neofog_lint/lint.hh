/**
 * @file
 * neofog_lint core: a token/include-level static-analysis pass that
 * enforces the repository's determinism, layering, observability, and
 * header-hygiene invariants (DESIGN.md, "Static analysis & enforced
 * invariants").
 *
 * The engine is deliberately libclang-free: every rule is decidable
 * from a comment/string-stripped token stream plus the file's
 * repository-relative path, which keeps the tool a single standalone
 * C++17 translation unit that builds in milliseconds and runs over
 * the whole tree as a ctest (`ctest -L lint`).
 *
 * Rules (each suppressible per line via a trailing
 * `// neofog-lint: allow(<rule>): <justification>` comment):
 *
 *  - R1 `determinism`   — no ambient entropy (rand/random_device/
 *    time()/wall clocks/thread ids) and no RNG seeding outside the
 *    sanctioned per-chain fork points.
 *  - R2 `layering`      — `#include` edges between `src/` subsystems
 *    must follow the layer DAG.
 *  - R3 `observability` — no direct stdout/stderr writes in library
 *    (`src/`) or harness (`bench/`) code; all output goes through
 *    `report_io`/`metrics`/`logging` (or `bench_util`'s sink).
 *  - R4 `hygiene`       — headers carry a NEOFOG_* include guard (or
 *    `#pragma once`) and never say `using namespace`.
 */

#ifndef NEOFOG_TOOLS_LINT_HH
#define NEOFOG_TOOLS_LINT_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace neofog::lint {

/** The four enforced rule families. */
enum class Rule {
    Determinism,   ///< R1: no ambient entropy / stray RNG seeding
    Layering,      ///< R2: includes follow the layer DAG
    Observability, ///< R3: output only via sanctioned sinks
    Hygiene,       ///< R4: header guards, no `using namespace`
};

/** Stable rule id used in diagnostics, e.g. "R1.determinism". */
const char *ruleId(Rule rule);

/** Short rule name as written in allow(...) trailers. */
const char *ruleName(Rule rule);

/** Parse a trailer rule name; returns false if unknown. */
bool ruleFromName(const std::string &name, Rule &out);

/** One diagnostic: a violation (or a malformed/unused suppression). */
struct Finding {
    std::string file;    ///< repository-relative path
    int line = 0;        ///< 1-based line number
    Rule rule = Rule::Hygiene;
    std::string message; ///< human-readable explanation
};

/** One honored `neofog-lint: allow(...)` trailer. */
struct Suppression {
    std::string file;
    int line = 0;
    Rule rule = Rule::Hygiene;
    std::string justification;
};

/** Accumulated result of linting one or more files. */
struct Result {
    std::vector<Finding> findings;        ///< unsuppressed violations
    std::vector<Suppression> suppressions; ///< honored allow() trailers
    int filesScanned = 0;
};

/**
 * Lint one file.  @p rel_path is the repository-relative path (it
 * determines which rules and which layer table apply); @p content is
 * the full file text.  Appends to @p result.
 */
void lintFile(const std::string &rel_path, const std::string &content,
              Result &result);

/** True if @p rel_path is a file the linter knows how to scan. */
bool lintableFile(const std::string &rel_path);

/** Print findings (file:line: [id] message), suppressions, summary. */
void printReport(const Result &result, std::ostream &os);

/** Exit code for a result: 0 clean, 1 violations. */
int exitCode(const Result &result);

/** Print the rule table (for --list-rules). */
void printRules(std::ostream &os);

} // namespace neofog::lint

#endif // NEOFOG_TOOLS_LINT_HH
