/**
 * @file
 * neofog_lint CLI: walk the given repository-relative files or
 * directories and lint every C++ source found — the token passes
 * (R1-R4) per file, then the semantic passes (R5-R8) over the
 * cross-file declaration model collected along the way.
 *
 * Usage:
 *   neofog_lint [--root DIR] [--format text|json|github]
 *               [--list-rules] PATH...
 *
 * PATHs are interpreted relative to --root (default: the current
 * directory), and diagnostics always print root-relative paths, so
 * `neofog_lint --root /path/to/repo src bench examples` emits the
 * same output from any build directory.
 *
 * Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.
 */

#include "lint.hh"
#include "model.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

bool
readFile(const fs::path &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return true;
}

/** Normalize to forward slashes (diagnostic and scoping form). */
std::string
relform(const fs::path &p)
{
    std::string s = p.generic_string();
    while (s.rfind("./", 0) == 0)
        s = s.substr(2);
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = fs::current_path();
    std::string format = "text";
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root") {
            if (i + 1 >= argc) {
                std::cerr << "neofog_lint: --root needs a value\n";
                return 2;
            }
            root = argv[++i];
        } else if (arg == "--format") {
            if (i + 1 >= argc) {
                std::cerr << "neofog_lint: --format needs a value\n";
                return 2;
            }
            format = argv[++i];
            if (format != "text" && format != "json" &&
                format != "github") {
                std::cerr << "neofog_lint: --format must be text, "
                             "json, or github\n";
                return 2;
            }
        } else if (arg == "--list-rules") {
            neofog::lint::printRules(std::cout);
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: neofog_lint [--root DIR] "
                         "[--format text|json|github] "
                         "[--list-rules] PATH...\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "neofog_lint: unknown option " << arg
                      << "\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        std::cerr << "usage: neofog_lint [--root DIR] "
                     "[--format text|json|github] "
                     "[--list-rules] PATH...\n";
        return 2;
    }

    std::error_code ec;
    neofog::lint::Result result;
    neofog::lint::Model model;
    auto lintOne = [&](const std::string &rel,
                       const std::string &content) {
        neofog::lint::lintFile(rel, content, result);
        neofog::lint::collectFile(rel, content, model);
    };
    for (const std::string &p : paths) {
        const fs::path abs = root / p;
        if (fs::is_directory(abs, ec)) {
            std::vector<std::string> files;
            for (const auto &entry :
                 fs::recursive_directory_iterator(abs, ec)) {
                if (!entry.is_regular_file())
                    continue;
                const std::string rel = relform(
                    fs::relative(entry.path(), root, ec));
                if (neofog::lint::lintableFile(rel))
                    files.push_back(rel);
            }
            // Deterministic diagnostic order regardless of the
            // directory iterator's whims.
            std::sort(files.begin(), files.end());
            for (const std::string &rel : files) {
                std::string content;
                if (!readFile(root / rel, content)) {
                    std::cerr << "neofog_lint: cannot read " << rel
                              << "\n";
                    return 2;
                }
                lintOne(rel, content);
            }
        } else if (fs::is_regular_file(abs, ec)) {
            std::string content;
            if (!readFile(abs, content)) {
                std::cerr << "neofog_lint: cannot read " << p
                          << "\n";
                return 2;
            }
            lintOne(relform(p), content);
        } else {
            std::cerr << "neofog_lint: no such path: " << p << "\n";
            return 2;
        }
    }
    neofog::lint::lintModel(model, result);

    // Interleaved per-file token findings and model findings sort
    // into one stable stream.
    std::stable_sort(
        result.findings.begin(), result.findings.end(),
        [](const neofog::lint::Finding &a,
           const neofog::lint::Finding &b) {
            if (a.file != b.file)
                return a.file < b.file;
            return a.line < b.line;
        });

    if (format == "json")
        neofog::lint::printJson(result, std::cout);
    else if (format == "github")
        neofog::lint::printGithub(result, std::cout);
    else
        neofog::lint::printReport(result, std::cout);
    return neofog::lint::exitCode(result);
}
