/**
 * @file
 * The cross-translation-unit declaration model behind neofog_lint's
 * semantic passes (R5-R8).
 *
 * collectFile (lint.hh) fills one Model from every scanned file; the
 * passes in lintModel then reason across files: a report struct's
 * members live in a header while its MetricRegistry declaration lives
 * in a .cc, a policy's ParamSpec table and its builder lambda sit in
 * the same add({...}) call but are different sub-expressions, and the
 * suppression inventory must stay consistent tree-wide.
 *
 * The declaration parser is a brace/statement machine over the
 * comment/string-stripped character stream (scan.hh) — NOT a C++
 * parser.  Its contract (see DESIGN.md, "Static analysis & enforced
 * invariants") is the repo's clang-formatted house style:
 *
 *  - one declarator per member statement (`int a, b;` records `b`);
 *  - members of function-pointer type (declarator contains parens)
 *    are not extracted;
 *  - serialize() must be defined inline in the class body;
 *  - PolicyRegistry registrations must be braced literals
 *    (`reg.add({ ... })`) for R7 to see them;
 *  - a declaration mentioning `const`/`constexpr`/`constinit`
 *    anywhere counts as immutable for R8 (so `const char *` tables
 *    pass even though the pointers are technically mutable).
 */

#ifndef NEOFOG_TOOLS_LINT_MODEL_HH
#define NEOFOG_TOOLS_LINT_MODEL_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.hh"

namespace neofog::lint {

/** One non-static data member of a struct/class. */
struct MemberDecl {
    std::string name;
    int line = 0;
    /**
     * Const or reference members cannot be assigned by a load, so R5
     * treats them as construction-derived and exempt.
     */
    bool constOrRef = false;
};

/** One struct/class declaration (nested names join with "::"). */
struct StructDecl {
    std::string name; ///< e.g. "Rtc::Config"
    std::string file;
    int line = 0;
    std::vector<MemberDecl> members;
    bool hasSerialize = false;
    int serializeLine = 0;
    /** Stripped code text of every serialize(Archive&) body. */
    std::string serializeBody;
};

/** One ParamSpec entry of a policy registration. */
struct ParamDecl {
    std::string name;
    int line = 0;
    bool hasDoc = false; ///< 4th element present with non-empty text
};

/** One PolicyRegistry add({...}) registration. */
struct PolicyDecl {
    std::string name; ///< registry key ("greedy", ...)
    std::string file;
    int line = 0;
    std::vector<ParamDecl> params;
    /** Param keys read via .i("k")/.d("k")/.b("k") in the region. */
    std::set<std::string> reads;
};

/** One mutable namespace-scope/static-local/class-static variable. */
struct GlobalDecl {
    std::string name;
    std::string file;
    int line = 0;
    enum Kind { NamespaceScope, StaticLocal, ClassStatic } kind =
        NamespaceScope;
};

/** One recorded R5-R8 suppression trailer, settled by lintModel. */
struct ModelTrailer {
    std::string file;
    int line = 0;
    Rule rule = Rule::Snapshot;
    std::string justification;
};

/** Everything the semantic passes know about the tree. */
struct Model {
    std::vector<StructDecl> structs;
    /** Struct names T with a concrete MetricRegistry<T> use. */
    std::set<std::string> reportStructs;
    /** Report name -> members declared as &Report::member. */
    std::map<std::string, std::set<std::string>> metricRefs;
    std::vector<PolicyDecl> policies;
    std::vector<GlobalDecl> globals;
    std::vector<ModelTrailer> trailers;
    int filesCollected = 0;
};

} // namespace neofog::lint

#endif // NEOFOG_TOOLS_LINT_MODEL_HH
