/**
 * @file
 * Shared lexical machinery of neofog_lint: comment/string stripping
 * with column preservation, and the suppression-trailer grammar.
 *
 * Used by both the token passes (lint.cc, rules R1-R4) and the
 * declaration parser behind the semantic passes (model.cc, rules
 * R5-R8), so the two layers agree character-for-character on what is
 * code, what is a string literal, and what is comment text.
 */

#ifndef NEOFOG_TOOLS_LINT_SCAN_HH
#define NEOFOG_TOOLS_LINT_SCAN_HH

#include <string>

#include "lint.hh"

namespace neofog::lint {

/** Per-file scan state carried across lines. */
struct ScanState {
    bool inBlockComment = false;
    bool inRawString = false;
    std::string rawDelimiter; // the )delim" that ends a raw string
};

struct LineScan {
    /** Line with comments AND string/char literals blanked to spaces
     *  (column-preserving): what the token/structure passes read. */
    std::string code;
    /** Line with comments blanked but string/char literals kept
     *  (column-preserving): what content extraction (policy names,
     *  param keys, docs) reads.  Same length as `code`. */
    std::string full;
    /** Concatenated // and slash-star comment text (trailers). */
    std::string comment;
};

/**
 * Strip comments, string literals, and char literals from one line,
 * preserving column positions (stripped characters become spaces).
 * Comment *text* is captured so suppression trailers survive, and a
 * strings-kept variant is captured for content extraction.
 */
LineScan scanLine(const std::string &line, ScanState &state);

/** A parsed `neofog-lint: allow(<rule>): <justification>` trailer. */
struct Trailer {
    bool present = false;
    bool wellFormed = false;
    Rule rule = Rule::Hygiene;
    std::string ruleText;
    std::string justification;
};

/**
 * Parse a trailer out of a line's comment text.  A trailer with an
 * unknown rule or an empty justification is reported as present but
 * not well-formed so suppressions can never silently rot.
 */
Trailer parseTrailer(const std::string &comment);

// Small path/string helpers shared by both layers.
bool startsWith(const std::string &s, const std::string &prefix);
bool endsWith(const std::string &s, const std::string &suffix);
bool isHeaderPath(const std::string &path);

} // namespace neofog::lint

#endif // NEOFOG_TOOLS_LINT_SCAN_HH
