/**
 * @file
 * Declaration parser + semantic passes (R5-R8) of neofog_lint.
 *
 * collectFile walks a file's comment/string-stripped character stream
 * with a brace/statement machine: a scope stack (namespace / class /
 * function / skipped region) decides whether a terminated statement is
 * a data member, a mutable global, or noise, and serialize(Archive&)
 * bodies are captured verbatim for the coverage check.  Three
 * line-level side scans collect MetricRegistry member-pointer
 * declarations, PolicyRegistry add({...}) registrations, and R5-R8
 * suppression trailers.  lintModel then runs the cross-file rule
 * passes over the merged model.  See model.hh for the parser contract
 * and its known limits.
 */

#include "model.hh"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <regex>
#include <sstream>

#include "scan.hh"

namespace neofog::lint {

namespace {

// ------------------------------------------------------- text helpers

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Word-boundary containment of @p word in @p hay. */
bool
containsWord(const std::string &hay, const std::string &word)
{
    if (word.empty())
        return false;
    std::size_t at = 0;
    while ((at = hay.find(word, at)) != std::string::npos) {
        const bool left_ok = at == 0 || !isIdentChar(hay[at - 1]);
        const std::size_t end = at + word.size();
        const bool right_ok = end >= hay.size() ||
                              !isIdentChar(hay[end]);
        if (left_ok && right_ok)
            return true;
        at = end;
    }
    return false;
}

bool
startsWithWord(const std::string &s, const char *word)
{
    const std::string t = trim(s);
    const std::size_t n = std::char_traits<char>::length(word);
    return t.compare(0, n, word) == 0 &&
           (t.size() == n || !isIdentChar(t[n]));
}

/**
 * Position of the first top-level `=` (assignment / default-member
 * initializer), skipping ==, <=, >=, != and compound assignments.
 * npos when none.
 */
std::size_t
topLevelAssign(const std::string &s)
{
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '=')
            continue;
        if (i + 1 < s.size() && s[i + 1] == '=') {
            ++i; // ==
            continue;
        }
        if (i > 0 && std::string("=<>!+-*/%&|^").find(s[i - 1]) !=
                         std::string::npos)
            continue;
        return i;
    }
    return std::string::npos;
}

/** Declarator part of a statement: text before any initializer. */
std::string
declaratorOf(const std::string &stmt)
{
    const std::size_t eq = topLevelAssign(stmt);
    return eq == std::string::npos ? stmt : stmt.substr(0, eq);
}

/** Last identifier token of @p s (the declared name), "" if none. */
std::string
lastIdentifier(std::string s)
{
    // Arrays and bitfields declare before the bracket / colon.
    const std::size_t bracket = s.find('[');
    if (bracket != std::string::npos)
        s = s.substr(0, bracket);
    // Single-colon (bitfield) cut; `::` survives.
    for (std::size_t i = 1; i + 1 < s.size(); ++i) {
        if (s[i] == ':' && s[i - 1] != ':' && s[i + 1] != ':') {
            s = s.substr(0, i);
            break;
        }
    }
    std::size_t e = s.size();
    while (e > 0 && !isIdentChar(s[e - 1]))
        --e;
    std::size_t b = e;
    while (b > 0 && isIdentChar(s[b - 1]))
        --b;
    if (b == e)
        return {};
    const std::string name = s.substr(b, e - b);
    if (std::isdigit(static_cast<unsigned char>(name[0])))
        return {};
    return name;
}

bool
hasConstKeyword(const std::string &s)
{
    return containsWord(s, "const") || containsWord(s, "constexpr") ||
           containsWord(s, "constinit");
}

/** "src/fog/x.cc" -> true. */
bool
inSrc(const std::string &rel_path)
{
    return startsWith(rel_path, "src/");
}

// --------------------------------------------------- sanctioned sinks

/**
 * Tool-level allowlist of the mutable globals that ARE the sanctioned
 * mechanism (R8): each entry is printed as an honored suppression so
 * the inventory stays visible in every lint report.
 */
struct SanctionedGlobal {
    const char *file;
    const char *name;
    const char *why;
};

const std::vector<SanctionedGlobal> &
sanctionedGlobals()
{
    static const std::vector<SanctionedGlobal> list = {
        {"src/balance/policy_registry.cc", "reg",
         "process-wide policy registry singleton: initialized once "
         "under the magic-static lock, read-only during simulation"},
    };
    return list;
}

// ------------------------------------------------------- line scanning

struct ScannedLine {
    std::string code; ///< strings blanked
    std::string full; ///< strings kept
};

std::vector<ScannedLine>
scanAll(const std::string &rel_path, const std::string &content,
        Model &model)
{
    std::vector<ScannedLine> lines;
    ScanState state;
    std::istringstream is(content);
    std::string raw;
    int lineno = 0;
    while (std::getline(is, raw)) {
        ++lineno;
        if (!raw.empty() && raw.back() == '\r')
            raw.pop_back();
        LineScan scan = scanLine(raw, state);
        const Trailer t = parseTrailer(scan.comment);
        if (t.wellFormed && projectRule(t.rule))
            model.trailers.push_back(
                {rel_path, lineno, t.rule, t.justification});
        lines.push_back({std::move(scan.code), std::move(scan.full)});
    }
    return lines;
}

// -------------------------------------------- statement/scope machine

struct Scope {
    enum Kind { Ns, Cls, Fn, Skip } kind = Ns;
    int structIdx = -1;    ///< Cls: index into out-structs
    bool preserveStmt = false; ///< Skip: initializer, keep statement
};

/** Strip leading access labels (`public:` ...) off a class statement. */
std::string
stripAccessLabels(std::string s)
{
    static const std::regex label(
        R"(^\s*(public|private|protected)\s*:)");
    std::smatch m;
    while (std::regex_search(s, m, label))
        s = m.suffix();
    return s;
}

/** Struct/class head: extract the declared name, "" if not a head. */
std::string
structHeadName(const std::string &stmt)
{
    std::string s = trim(stmt);
    static const std::regex tmpl(R"(^template\s*<[^>]*>\s*)");
    std::smatch m;
    if (std::regex_search(s, m, tmpl))
        s = m.suffix();
    static const std::regex head(
        R"(^(struct|class)\s+([A-Za-z_]\w*))");
    if (!std::regex_search(s, m, head))
        return {};
    return m[2];
}

/**
 * The declaration walk: structs + members + serialize bodies, mutable
 * globals/statics.  Works on the strings-blanked stream.
 */
void
walkDeclarations(const std::string &rel_path,
                 const std::vector<ScannedLine> &lines, Model &model)
{
    std::vector<Scope> st; // implicit outermost namespace scope
    st.push_back({Scope::Ns, -1, false});

    std::vector<StructDecl> structs;

    std::string stmt;
    int stmtLine = 0;
    bool captureActive = false;
    std::size_t captureDepth = 0; // st.size() while body is open
    int captureStruct = -1;

    auto appendCapture = [&](char c) {
        if (captureActive && captureStruct >= 0)
            structs[static_cast<std::size_t>(captureStruct)]
                .serializeBody += c;
    };

    auto clearStmt = [&] {
        stmt.clear();
        stmtLine = 0;
    };

    auto finalizeStmt = [&](int /*lineno*/) {
        const Scope &top = st.back();
        std::string text = top.kind == Scope::Cls
                               ? stripAccessLabels(stmt)
                               : stmt;
        const std::string trimmed = trim(text);
        if (trimmed.empty()) {
            clearStmt();
            return;
        }
        const std::string decl = declaratorOf(text);
        const bool looks_function =
            decl.find('(') != std::string::npos;
        const bool keyworded =
            startsWithWord(text, "using") ||
            startsWithWord(text, "typedef") ||
            startsWithWord(text, "friend") ||
            startsWithWord(text, "struct") ||
            startsWithWord(text, "class") ||
            startsWithWord(text, "enum") ||
            startsWithWord(text, "union") ||
            startsWithWord(text, "namespace") ||
            startsWithWord(text, "template") ||
            startsWithWord(text, "extern") ||
            startsWithWord(text, "static_assert") ||
            startsWithWord(text, "goto") ||
            containsWord(text, "operator");
        if (top.kind == Scope::Cls && top.structIdx >= 0) {
            if (!keyworded && !looks_function) {
                if (startsWithWord(text, "static")) {
                    // Class-static data member: global state, not
                    // per-instance (so not an R5 member).
                    if (!hasConstKeyword(decl)) {
                        const std::string name =
                            lastIdentifier(decl);
                        if (!name.empty())
                            model.globals.push_back(
                                {name, rel_path, stmtLine,
                                 GlobalDecl::ClassStatic});
                    }
                } else {
                    const std::string name = lastIdentifier(decl);
                    if (!name.empty()) {
                        MemberDecl m;
                        m.name = name;
                        m.line = stmtLine;
                        m.constOrRef =
                            hasConstKeyword(decl) ||
                            decl.find('&') != std::string::npos;
                        structs[static_cast<std::size_t>(
                                    top.structIdx)]
                            .members.push_back(std::move(m));
                    }
                }
            }
        } else if (top.kind == Scope::Ns) {
            if (!keyworded && !looks_function &&
                !hasConstKeyword(decl)) {
                // Require a plausible declaration: at least a type
                // token and a name token.
                const std::string name = lastIdentifier(decl);
                std::istringstream ts(trim(decl));
                std::string tok;
                int tokens = 0;
                while (ts >> tok)
                    ++tokens;
                if (!name.empty() && tokens >= 2)
                    model.globals.push_back(
                        {name, rel_path, stmtLine,
                         GlobalDecl::NamespaceScope});
            }
        } else if (top.kind == Scope::Fn) {
            if (startsWithWord(text, "static") &&
                !hasConstKeyword(decl) && !looks_function) {
                const std::string name = lastIdentifier(decl);
                if (!name.empty())
                    model.globals.push_back(
                        {name, rel_path, stmtLine,
                         GlobalDecl::StaticLocal});
            }
        }
        clearStmt();
    };

    auto enclosingStructName = [&](const std::string &name) {
        for (auto it = st.rbegin(); it != st.rend(); ++it) {
            if (it->kind == Scope::Cls && it->structIdx >= 0)
                return structs[static_cast<std::size_t>(
                                   it->structIdx)]
                           .name +
                       "::" + name;
        }
        return name;
    };

    static const std::regex serializeSig(
        R"(\bserialize\s*\(\s*Archive\s*&)");

    int lineno = 0;
    for (const ScannedLine &line : lines) {
        ++lineno;
        const std::string &code = line.code;
        if (trim(code).empty())
            continue;
        if (trim(code)[0] == '#')
            continue; // preprocessor: R2 handles includes
        for (std::size_t i = 0; i < code.size(); ++i) {
            const char c = code[i];
            if (captureActive)
                appendCapture(c);
            if (st.back().kind == Scope::Skip) {
                if (c == '{') {
                    // Nested braces inherit the preserve flag so a
                    // deep initializer cannot clear its statement.
                    st.push_back(
                        {Scope::Skip, -1, st.back().preserveStmt});
                } else if (c == '}') {
                    const bool preserved = st.back().preserveStmt;
                    st.pop_back();
                    if (!preserved)
                        clearStmt();
                    if (captureActive &&
                        st.size() < captureDepth) {
                        captureActive = false;
                        captureStruct = -1;
                    }
                }
                continue;
            }
            if (c == '{') {
                const std::string t = trim(stmt);
                const std::string headName = structHeadName(stmt);
                const bool initList =
                    !t.empty() &&
                    (t.back() == '=' || t.back() == ',' ||
                     t.back() == '(' || t.back() == '[' ||
                     endsWith(t, "return") ||
                     topLevelAssign(t) != std::string::npos);
                if (initList) {
                    st.push_back({Scope::Skip, -1, true});
                } else if (startsWithWord(t, "enum") ||
                           startsWithWord(t, "union")) {
                    st.push_back({Scope::Skip, -1, false});
                    clearStmt();
                } else if (!headName.empty()) {
                    StructDecl s;
                    s.name = enclosingStructName(headName);
                    s.file = rel_path;
                    s.line = stmtLine ? stmtLine : lineno;
                    structs.push_back(std::move(s));
                    st.push_back(
                        {Scope::Cls,
                         static_cast<int>(structs.size()) - 1,
                         false});
                    clearStmt();
                } else if (startsWithWord(t, "namespace") ||
                           startsWithWord(t, "extern")) {
                    st.push_back({Scope::Ns, -1, false});
                    clearStmt();
                } else if (t.find('(') != std::string::npos) {
                    const Scope &top = st.back();
                    const bool is_serialize =
                        top.kind == Scope::Cls &&
                        top.structIdx >= 0 &&
                        std::regex_search(stmt, serializeSig);
                    st.push_back({Scope::Fn, -1, false});
                    if (is_serialize) {
                        StructDecl &owner =
                            structs[static_cast<std::size_t>(
                                top.structIdx)];
                        owner.hasSerialize = true;
                        if (owner.serializeLine == 0)
                            owner.serializeLine =
                                stmtLine ? stmtLine : lineno;
                        owner.serializeBody += ' ';
                        captureActive = true;
                        captureStruct = top.structIdx;
                        captureDepth = st.size();
                    }
                    clearStmt();
                } else if (st.back().kind == Scope::Cls) {
                    // Member brace-initializer: Type name{...};
                    st.push_back({Scope::Skip, -1, true});
                } else {
                    st.push_back({Scope::Skip, -1, true});
                }
            } else if (c == '}') {
                if (st.size() > 1)
                    st.pop_back();
                clearStmt();
                if (captureActive && st.size() < captureDepth) {
                    captureActive = false;
                    captureStruct = -1;
                }
            } else if (c == ';') {
                finalizeStmt(lineno);
            } else {
                if (trim(stmt).empty()) {
                    if (std::isspace(static_cast<unsigned char>(c)))
                        continue;
                    stmt.clear(); // drop accumulated whitespace
                    stmtLine = lineno;
                }
                stmt += c;
                // An access label is not part of the following
                // member statement (it would skew its line number).
                if (c == ':' && st.back().kind == Scope::Cls) {
                    const std::string t = trim(stmt);
                    if (t == "public:" || t == "private:" ||
                        t == "protected:")
                        clearStmt();
                }
            }
        }
        stmt += ' '; // line break separates tokens
        if (captureActive)
            appendCapture(' ');
    }

    for (StructDecl &s : structs)
        model.structs.push_back(std::move(s));
}

// ------------------------------------- MetricRegistry reference scan

void
scanMetricRefs(const std::string & /*rel_path*/,
               const std::vector<ScannedLine> &lines, Model &model)
{
    bool mentions_registry = false;
    for (const ScannedLine &l : lines) {
        if (l.code.find("MetricRegistry<") != std::string::npos) {
            mentions_registry = true;
            break;
        }
    }
    if (!mentions_registry)
        return;

    static const std::regex registry_re(
        R"(MetricRegistry<\s*([A-Za-z_]\w*)\s*>)");
    static const std::regex tparam_re(
        R"((class|typename)\s+([A-Za-z_]\w*))");
    static const std::regex tmpl_re(R"(template\s*<([^>]*)>)");
    static const std::regex alias_re(
        R"(\busing\s+([A-Za-z_]\w*)\s*=\s*([A-Za-z_][\w:]*))");
    static const std::regex memref_re(
        R"(&\s*([A-Za-z_]\w*)\s*::\s*([A-Za-z_]\w*))");

    std::set<std::string> template_params;
    std::map<std::string, std::string> aliases;
    std::set<std::string> registry_names;
    std::vector<std::pair<std::string, std::string>> refs;

    for (const ScannedLine &l : lines) {
        const std::string &code = l.code;
        auto begin = std::sregex_iterator(code.begin(), code.end(),
                                          tmpl_re);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            const std::string params = (*it)[1];
            auto pb = std::sregex_iterator(params.begin(),
                                           params.end(), tparam_re);
            for (auto pit = pb; pit != std::sregex_iterator(); ++pit)
                template_params.insert((*pit)[2]);
        }
        auto rb = std::sregex_iterator(code.begin(), code.end(),
                                       registry_re);
        for (auto it = rb; it != std::sregex_iterator(); ++it)
            registry_names.insert((*it)[1]);
        std::smatch m;
        std::string rest = code;
        while (std::regex_search(rest, m, alias_re)) {
            std::string target = m[2];
            const std::size_t colons = target.rfind("::");
            if (colons != std::string::npos)
                target = target.substr(colons + 2);
            aliases[m[1]] = target;
            rest = m.suffix();
        }
        auto mb = std::sregex_iterator(code.begin(), code.end(),
                                       memref_re);
        for (auto it = mb; it != std::sregex_iterator(); ++it)
            refs.emplace_back((*it)[1], (*it)[2]);
    }

    for (const std::string &name : registry_names) {
        if (template_params.count(name) == 0)
            model.reportStructs.insert(name);
    }
    for (const auto &[qual, member] : refs) {
        const auto alias = aliases.find(qual);
        const std::string resolved =
            alias == aliases.end() ? qual : alias->second;
        model.metricRefs[resolved].insert(member);
    }
}

// ------------------------------------ PolicyRegistry add({...}) scan

/** Map a region offset back to its 1-based source line. */
int
lineOfOffset(const std::vector<std::pair<int, std::size_t>> &map,
             std::size_t offset)
{
    int line = map.empty() ? 0 : map.front().first;
    for (const auto &[lineno, start] : map) {
        if (start > offset)
            break;
        line = lineno;
    }
    return line;
}

void
parsePolicyRegion(const std::string &rel_path,
                  const std::string &region_code,
                  const std::string &region_full,
                  const std::vector<std::pair<int, std::size_t>> &map,
                  Model &model)
{
    PolicyDecl policy;
    policy.file = rel_path;
    policy.line = map.empty() ? 0 : map.front().first;

    static const std::regex name_re(R"rx("([^"]*)")rx");
    std::smatch m;
    if (std::regex_search(region_full, m, name_re))
        policy.name = m[1];
    if (policy.name.empty())
        return; // not a braced PolicyInfo literal

    // Param entries: `{"key", ParamType::X, <default>[, "doc"]}`.
    static const std::regex param_re(
        R"rx(\{\s*"([A-Za-z0-9_]+)"\s*,\s*ParamType\s*::)rx");
    auto pb = std::sregex_iterator(region_full.begin(),
                                   region_full.end(), param_re);
    for (auto it = pb; it != std::sregex_iterator(); ++it) {
        ParamDecl param;
        param.name = (*it)[1];
        const auto entry_start =
            static_cast<std::size_t>(it->position(0));
        param.line = lineOfOffset(map, entry_start);
        // Find the matching close brace on the strings-blanked
        // stream, splitting top-level commas as we go.
        int depth = 0;
        std::vector<std::size_t> commas;
        std::size_t entry_end = region_code.size();
        for (std::size_t i = entry_start; i < region_code.size();
             ++i) {
            const char c = region_code[i];
            if (c == '{' || c == '(' || c == '[')
                ++depth;
            else if (c == '}' || c == ')' || c == ']') {
                --depth;
                if (depth == 0) {
                    entry_end = i;
                    break;
                }
            } else if (c == ',' && depth == 1) {
                commas.push_back(i);
            }
        }
        // Elements: 0 name, 1 type, 2 default, 3 doc.
        if (commas.size() >= 3) {
            const std::size_t doc_begin = commas[2] + 1;
            const std::string doc_text = region_full.substr(
                doc_begin, entry_end - doc_begin);
            static const std::regex nonempty_doc(
                R"("[^"]*[^\s"][^"]*")");
            param.hasDoc =
                std::regex_search(doc_text, nonempty_doc);
        }
        policy.params.push_back(std::move(param));
    }

    static const std::regex read_re(
        R"rx(\.\s*([idb])\s*\(\s*"([A-Za-z0-9_]+)"\s*\))rx");
    auto rb = std::sregex_iterator(region_full.begin(),
                                   region_full.end(), read_re);
    for (auto it = rb; it != std::sregex_iterator(); ++it)
        policy.reads.insert((*it)[2]);

    model.policies.push_back(std::move(policy));
}

void
scanPolicies(const std::string &rel_path,
             const std::vector<ScannedLine> &lines, Model &model)
{
    static const std::regex add_open(R"(\badd\s*\(\s*\{)");
    for (std::size_t li = 0; li < lines.size(); ++li) {
        std::smatch m;
        const std::string &code = lines[li].code;
        if (!std::regex_search(code, m, add_open))
            continue;
        const std::size_t open_paren =
            static_cast<std::size_t>(m.position(0)) +
            m.str(0).find('(');
        // Capture until the '(' closes, joining lines with '\n'.
        std::string region_code;
        std::string region_full;
        std::vector<std::pair<int, std::size_t>> map;
        int depth = 0;
        bool done = false;
        for (std::size_t lj = li; lj < lines.size() && !done; ++lj) {
            const std::string &lc = lines[lj].code;
            const std::string &lf = lines[lj].full;
            const std::size_t start =
                lj == li ? open_paren : std::size_t{0};
            map.emplace_back(static_cast<int>(lj) + 1,
                             region_code.size());
            for (std::size_t i = start; i < lc.size(); ++i) {
                region_code += lc[i];
                region_full += i < lf.size() ? lf[i] : ' ';
                if (lc[i] == '(')
                    ++depth;
                else if (lc[i] == ')') {
                    --depth;
                    if (depth == 0) {
                        done = true;
                        break;
                    }
                }
            }
            region_code += '\n';
            region_full += '\n';
        }
        parsePolicyRegion(rel_path, region_code, region_full, map,
                          model);
    }
}

// ----------------------------------------------------- pass helpers

/** Last "::" component of a qualified struct name. */
std::string
unqualified(const std::string &name)
{
    const std::size_t at = name.rfind("::");
    return at == std::string::npos ? name : name.substr(at + 2);
}

/**
 * Trailer consumption: the first matching trailer is marked used and
 * recorded as a suppression once; later findings on the same line and
 * rule reuse it (a line can hold only one trailer, and R7 can raise
 * two findings on one param line).
 */
struct TrailerLedger {
    const Model &model;
    std::vector<char> used;
    explicit TrailerLedger(const Model &m)
        : model(m), used(m.trailers.size(), 0)
    {}

    bool
    consume(const std::string &file, int line, Rule rule,
            Result &result)
    {
        for (std::size_t i = 0; i < model.trailers.size(); ++i) {
            const ModelTrailer &t = model.trailers[i];
            if (t.file != file || t.line != line || t.rule != rule)
                continue;
            if (!used[i]) {
                used[i] = 1;
                result.suppressions.push_back(
                    {t.file, t.line, t.rule, t.justification});
            }
            return true;
        }
        return false;
    }
};

} // namespace

// ------------------------------------------------------------- public

void
collectFile(const std::string &rel_path, const std::string &content,
            Model &model)
{
    ++model.filesCollected;
    std::vector<ScannedLine> lines =
        scanAll(rel_path, content, model);
    if (!inSrc(rel_path))
        return; // trailers recorded above; declarations are src-only
    walkDeclarations(rel_path, lines, model);
    scanMetricRefs(rel_path, lines, model);
    scanPolicies(rel_path, lines, model);
}

void
lintModel(const Model &model, Result &result)
{
    TrailerLedger ledger(model);

    // --- R5: snapshot coverage ---------------------------------
    static const std::regex registry_walk(R"(\bmetrics\s*\(\s*\))");
    for (const StructDecl &s : model.structs) {
        if (!s.hasSerialize)
            continue;
        // Registry-walked serialize (e.g. SystemReport) archives
        // whatever the MetricRegistry declares: member coverage is
        // R6's job there.
        if (std::regex_search(s.serializeBody, registry_walk))
            continue;
        for (const MemberDecl &m : s.members) {
            if (m.constOrRef)
                continue; // construction-derived by type
            if (containsWord(s.serializeBody, m.name))
                continue;
            if (ledger.consume(s.file, m.line, Rule::Snapshot,
                               result))
                continue;
            result.findings.push_back(
                {s.file, m.line, Rule::Snapshot,
                 "unserialized member '" + m.name + "' of '" +
                     s.name +
                     "': not referenced in serialize() — archive "
                     "it, or mark it scratch/derived with "
                     "allow(snapshot)"});
        }
    }

    // --- R6: metric coverage -----------------------------------
    for (const StructDecl &s : model.structs) {
        const std::string plain = unqualified(s.name);
        if (model.reportStructs.count(plain) == 0)
            continue;
        const auto refs = model.metricRefs.find(plain);
        for (const MemberDecl &m : s.members) {
            if (refs != model.metricRefs.end() &&
                refs->second.count(m.name))
                continue;
            if (ledger.consume(s.file, m.line, Rule::Metric, result))
                continue;
            result.findings.push_back(
                {s.file, m.line, Rule::Metric,
                 "report member '" + m.name + "' of '" + plain +
                     "' has no MetricDef: declare it (&" + plain +
                     "::" + m.name +
                     ") in the MetricRegistry list, or justify "
                     "with allow(metric)"});
        }
    }

    // --- R7: registry coverage ---------------------------------
    for (const PolicyDecl &p : model.policies) {
        for (const ParamDecl &param : p.params) {
            if (p.reads.count(param.name) == 0 &&
                !ledger.consume(p.file, param.line, Rule::Registry,
                                result)) {
                result.findings.push_back(
                    {p.file, param.line, Rule::Registry,
                     "param '" + param.name + "' of policy '" +
                         p.name +
                         "' is declared but never read in its "
                         "builder (p.i/p.d/p.b) — dead knob or "
                         "typo"});
            }
            if (!param.hasDoc &&
                !ledger.consume(p.file, param.line, Rule::Registry,
                                result)) {
                result.findings.push_back(
                    {p.file, param.line, Rule::Registry,
                     "param '" + param.name + "' of policy '" +
                         p.name +
                         "' has empty docs — every ParamSpec "
                         "documents itself in --list-balancers"});
            }
        }
    }

    // --- R8: mutable global state ------------------------------
    for (const GlobalDecl &g : model.globals) {
        bool sanctioned = false;
        for (const SanctionedGlobal &s : sanctionedGlobals()) {
            if (g.file == s.file && g.name == s.name) {
                result.suppressions.push_back(
                    {g.file, g.line, Rule::Global,
                     std::string("[tool allowlist] ") + s.why});
                sanctioned = true;
                break;
            }
        }
        if (sanctioned)
            continue;
        if (ledger.consume(g.file, g.line, Rule::Global, result))
            continue;
        const char *kind =
            g.kind == GlobalDecl::NamespaceScope
                ? "namespace-scope"
                : g.kind == GlobalDecl::StaticLocal
                      ? "function-local static"
                      : "class-static";
        result.findings.push_back(
            {g.file, g.line, Rule::Global,
             std::string("mutable ") + kind + " state '" + g.name +
                 "' is a race/determinism hazard under "
                 "chain-parallel execution — make it "
                 "const/constexpr, move it into per-chain state, "
                 "or justify with allow(global)"});
    }

    // --- unused R5-R8 trailers ---------------------------------
    for (std::size_t i = 0; i < model.trailers.size(); ++i) {
        if (ledger.used[i])
            continue;
        const ModelTrailer &t = model.trailers[i];
        result.findings.push_back(
            {t.file, t.line, Rule::Hygiene,
             std::string("unused suppression for ") +
                 ruleId(t.rule) +
                 " (nothing to allow on this line — delete it)"});
    }
}

} // namespace neofog::lint
