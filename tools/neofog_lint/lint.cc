/**
 * @file
 * neofog_lint engine: comment/string stripping, suppression-trailer
 * parsing, the R1-R4 token passes, and the report printers.  The
 * semantic passes (R5-R8) live in model.cc.  See lint.hh for the
 * contract and DESIGN.md "Static analysis & enforced invariants" for
 * the rule rationale.
 */

#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdio>
#include <map>
#include <ostream>
#include <regex>
#include <set>
#include <sstream>

#include "scan.hh"

namespace neofog::lint {

namespace {

// ---------------------------------------------------------------- rules

const char *kRuleIds[kRuleCount] = {
    "R1.determinism", "R2.layering", "R3.observability", "R4.hygiene",
    "R5.snapshot",    "R6.metric",   "R7.registry",      "R8.global"};
const char *kRuleNames[kRuleCount] = {
    "determinism", "layering", "observability", "hygiene",
    "snapshot",    "metric",   "registry",      "global"};

/**
 * Layer DAG over `src/` subsystems: which subsystem directories each
 * directory's includes may point into.  This is the refined,
 * per-directory form of the coarse tiers
 *   sim -> {hw, energy, workload} -> {node, net, balance}
 *       -> {fog, virt}
 * (DESIGN.md): every edge points strictly downward; within-tier edges
 * (hw -> energy, workload -> kernels) are listed explicitly so the
 * whole relation stays an acyclic allowlist rather than a tier
 * heuristic.
 *
 * `snapshot` sits beside fog: it may include from every subsystem it
 * serializes, but only fog (and the out-of-tree tools/ and examples/)
 * may include snapshot — component headers keep their serialize()
 * members as archive-type templates precisely so they never need the
 * snapshot headers themselves.
 *
 * `dist` (the multi-process coordinator/worker runtime) tops the DAG:
 * it may include everything, and nothing in src/ includes it back —
 * only examples/, bench/, and tests link against it.
 */
const std::map<std::string, std::set<std::string>> &
layerTable()
{
    static const std::map<std::string, std::set<std::string>> table = {
        {"sim", {}},
        {"kernels", {"sim"}},
        {"energy", {"sim"}},
        {"hw", {"sim", "energy"}},
        {"workload", {"sim", "hw", "kernels"}},
        {"net", {"sim", "hw"}},
        {"balance", {"sim"}},
        {"node", {"sim", "energy", "hw", "net"}},
        {"virt", {"sim", "hw", "net"}},
        {"snapshot",
         {"sim", "kernels", "energy", "hw", "workload", "net",
          "balance", "node", "virt"}},
        {"fog",
         {"sim", "kernels", "energy", "hw", "workload", "net",
          "balance", "node", "virt", "snapshot"}},
        // The distributed runtime drives fog systems over the
        // snapshot wire format; it sits at the very top of the DAG
        // and nothing in src/ may include it back.
        {"dist",
         {"sim", "kernels", "energy", "hw", "workload", "net",
          "balance", "node", "virt", "snapshot", "fog"}},
    };
    return table;
}

/**
 * Files allowed to seed an Rng from scratch: the generator itself,
 * the Simulator root stream, and FogSystem's per-chain fork loop.
 * Everything else must receive a stream by value or fork one.
 */
const std::set<std::string> &
sanctionedSeedFiles()
{
    static const std::set<std::string> files = {
        "src/sim/rng.hh",
        "src/sim/rng.cc",
        "src/sim/simulator.hh",
        "src/fog/fog_system.cc",
    };
    return files;
}

/**
 * Sink implementations: the files that *are* the sanctioned output
 * layer and therefore hold the only direct stream writes (R3).
 */
const std::set<std::string> &
sinkFiles()
{
    static const std::set<std::string> files = {
        "src/sim/logging.cc",   // inform/warn/panic stderr sink
        "bench/bench_util.hh",  // harness stdout/err sink + ResultSink
    };
    return files;
}

// ------------------------------------------------------- path analysis

/** "src/fog/chain_engine.cc" -> "fog"; "" when not under src/. */
std::string
srcLayerOf(const std::string &rel_path)
{
    if (!startsWith(rel_path, "src/"))
        return {};
    const std::size_t start = 4;
    const std::size_t slash = rel_path.find('/', start);
    if (slash == std::string::npos)
        return {};
    return rel_path.substr(start, slash - start);
}

// ---------------------------------------------------------- rule passes

struct PendingFinding {
    int line;
    Rule rule;
    std::string message;
};

/** Regex-ban description: pattern plus the message shown on a hit. */
struct TokenBan {
    std::regex pattern;
    const char *what;
};

const std::vector<TokenBan> &
determinismBans()
{
    // Word boundaries keep `airtime(` / `snprintf(` etc. clean.
    static const std::vector<TokenBan> bans = [] {
        std::vector<TokenBan> v;
        auto add = [&v](const char *re, const char *what) {
            v.push_back({std::regex(re), what});
        };
        add(R"(\brand\s*\()", "rand()");
        add(R"(\bsrand\s*\()", "srand()");
        add(R"(\brandom_device\b)", "std::random_device");
        add(R"(\btime\s*\()", "time()");
        add(R"(\bclock\s*\()", "clock()");
        add(R"(\bsystem_clock\b)", "std::chrono::system_clock");
        add(R"(\bhigh_resolution_clock\b)",
            "std::chrono::high_resolution_clock");
        add(R"(\bthis_thread\s*::\s*get_id\b)",
            "std::this_thread::get_id()");
        add(R"(\bpthread_self\s*\()", "pthread_self()");
        add(R"(\bgettid\s*\()", "gettid()");
        return v;
    }();
    return bans;
}

const std::vector<TokenBan> &
observabilityBans()
{
    static const std::vector<TokenBan> bans = [] {
        std::vector<TokenBan> v;
        auto add = [&v](const char *re, const char *what) {
            v.push_back({std::regex(re), what});
        };
        add(R"(\bcout\b)", "std::cout");
        add(R"(\bcerr\b)", "std::cerr");
        add(R"(\bclog\b)", "std::clog");
        // \bprintf does not match snprintf/fprintf (word chars on
        // both sides of the boundary), so each spelling is explicit.
        add(R"(\bprintf\s*\()", "printf()");
        add(R"(\bfprintf\s*\()", "fprintf()");
        add(R"(\bvprintf\s*\()", "vprintf()");
        add(R"(\bputs\s*\()", "puts()");
        add(R"(\bfputs\s*\()", "fputs()");
        add(R"(\bputchar\s*\()", "putchar()");
        add(R"(\bfputc\s*\()", "fputc()");
        return v;
    }();
    return bans;
}

/** R1b: `Rng name(args)` or `Rng(args)` with a non-empty seed. */
bool
seedsRng(const std::string &code)
{
    if (code.find("Rng") == std::string::npos)
        return false;
    // Forking an existing stream is the sanctioned mechanism.
    if (code.find(".fork(") != std::string::npos ||
        code.find("forkRng(") != std::string::npos)
        return false;
    static const std::regex direct(R"(\bRng\s*\(\s*[^)\s])");
    static const std::regex named(
        R"(\bRng\s+[A-Za-z_]\w*\s*\(\s*[^)\s])");
    return std::regex_search(code, direct) ||
           std::regex_search(code, named);
}

/** R2: first path component of a local include, "" if none. */
std::string
includeTarget(const std::string &code, std::string &full)
{
    static const std::regex re(R"(^\s*#\s*include\s*\"([^\"]+)\")");
    std::smatch m;
    if (!std::regex_search(code, m, re))
        return {};
    full = m[1];
    const std::size_t slash = full.find('/');
    if (slash == std::string::npos)
        return full; // unqualified — caller decides
    return full.substr(0, slash);
}

// Note: #include lines are parsed from the raw line text (their
// quoted path is a string literal, blanked in `code`).

struct FileScope {
    bool checkDeterminism = false; ///< R1 token bans
    bool checkSeeding = false;     ///< R1b Rng construction
    bool checkLayering = false;    ///< R2
    bool checkObservability = false; ///< R3
    bool checkHygiene = false;     ///< R4 (headers)
    std::string layer;             ///< src/ subsystem, if any
};

/**
 * Decide which rules apply to a path.  `src/` gets everything;
 * `bench/` gets R1 tokens + R3 (its harnesses must stay deterministic
 * and route text through bench_util's sink); `examples/` are
 * application code — stdout is their user interface and picking seeds
 * is their prerogative — so only R4 applies there.
 */
FileScope
scopeOf(const std::string &rel_path)
{
    FileScope s;
    s.layer = srcLayerOf(rel_path);
    const bool in_src = startsWith(rel_path, "src/");
    const bool in_bench = startsWith(rel_path, "bench/");
    const bool in_examples = startsWith(rel_path, "examples/");
    const bool sink = sinkFiles().count(rel_path) > 0;
    const bool seeder = sanctionedSeedFiles().count(rel_path) > 0;
    if (in_src) {
        s.checkDeterminism = true;
        s.checkSeeding = !seeder;
        s.checkLayering = !s.layer.empty();
        s.checkObservability = !sink;
        s.checkHygiene = true;
    } else if (in_bench) {
        s.checkDeterminism = true;
        s.checkObservability = !sink;
        s.checkHygiene = true;
    } else if (in_examples) {
        s.checkHygiene = true;
    }
    return s;
}

/** JSON string escaping (control chars, quotes, backslashes). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * GitHub workflow-command data escaping: % first, then newlines
 * (https://docs.github.com/actions "workflow commands" grammar).
 */
std::string
githubEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '%': out += "%25"; break;
        case '\r': out += "%0D"; break;
        case '\n': out += "%0A"; break;
        default: out += c;
        }
    }
    return out;
}

} // namespace

// ------------------------------------------------------------- public

const char *
ruleId(Rule rule)
{
    return kRuleIds[static_cast<int>(rule)];
}

const char *
ruleName(Rule rule)
{
    return kRuleNames[static_cast<int>(rule)];
}

bool
ruleFromName(const std::string &name, Rule &out)
{
    for (int i = 0; i < kRuleCount; ++i) {
        if (name == kRuleNames[i]) {
            out = static_cast<Rule>(i);
            return true;
        }
    }
    return false;
}

bool
projectRule(Rule rule)
{
    return static_cast<int>(rule) >=
           static_cast<int>(Rule::Snapshot);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

bool
isHeaderPath(const std::string &path)
{
    return endsWith(path, ".hh") || endsWith(path, ".hpp") ||
           endsWith(path, ".h");
}

bool
lintableFile(const std::string &rel_path)
{
    return endsWith(rel_path, ".cc") || endsWith(rel_path, ".cpp") ||
           endsWith(rel_path, ".cxx") || isHeaderPath(rel_path);
}

// ------------------------------------- comment/string/trailer scanning

LineScan
scanLine(const std::string &line, ScanState &state)
{
    LineScan out;
    out.code.assign(line.size(), ' ');
    out.full.assign(line.size(), ' ');
    std::size_t i = 0;
    const std::size_t n = line.size();
    while (i < n) {
        if (state.inBlockComment) {
            const std::size_t end = line.find("*/", i);
            const std::size_t stop =
                end == std::string::npos ? n : end;
            out.comment.append(line, i, stop - i);
            if (end == std::string::npos)
                return out;
            state.inBlockComment = false;
            i = end + 2;
            continue;
        }
        if (state.inRawString) {
            const std::size_t end = line.find(state.rawDelimiter, i);
            if (end == std::string::npos)
                return out;
            state.inRawString = false;
            i = end + state.rawDelimiter.size();
            continue;
        }
        const char c = line[i];
        if (c == '/' && i + 1 < n && line[i + 1] == '/') {
            out.comment.append(line, i + 2, n - i - 2);
            return out;
        }
        if (c == '/' && i + 1 < n && line[i + 1] == '*') {
            state.inBlockComment = true;
            i += 2;
            continue;
        }
        if (c == 'R' && i + 1 < n && line[i + 1] == '"' &&
            (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                            line[i - 1])) &&
                        line[i - 1] != '_'))) {
            const std::size_t paren = line.find('(', i + 2);
            if (paren != std::string::npos) {
                state.rawDelimiter =
                    ")" + line.substr(i + 2, paren - i - 2) + "\"";
                state.inRawString = true;
                const std::size_t end =
                    line.find(state.rawDelimiter, paren + 1);
                if (end != std::string::npos) {
                    state.inRawString = false;
                    i = end + state.rawDelimiter.size();
                } else {
                    return out;
                }
                continue;
            }
        }
        if (c == '\'' && i > 0 &&
            std::isdigit(static_cast<unsigned char>(line[i - 1]))) {
            // Digit separator (20'000), not a char literal.
            out.full[i] = c;
            ++i;
            continue;
        }
        if (c == '"' || c == '\'') {
            const char quote = c;
            const std::size_t start = i;
            ++i;
            while (i < n) {
                if (line[i] == '\\')
                    i += 2;
                else if (line[i] == quote) {
                    ++i;
                    break;
                } else
                    ++i;
            }
            // Literal stays visible in `full` (content extraction);
            // `code` keeps the blanks.
            const std::size_t stop = std::min(i, n);
            for (std::size_t k = start; k < stop; ++k)
                out.full[k] = line[k];
            continue;
        }
        out.code[i] = c;
        out.full[i] = c;
        ++i;
    }
    return out;
}

Trailer
parseTrailer(const std::string &comment)
{
    Trailer t;
    const std::size_t at = comment.find("neofog-lint:");
    if (at == std::string::npos)
        return t;
    t.present = true;
    static const std::regex re(
        R"(neofog-lint:\s*allow\(([A-Za-z0-9_.]+)\)\s*:\s*(\S.*))");
    std::smatch m;
    if (!std::regex_search(comment, m, re))
        return t;
    t.ruleText = m[1];
    t.justification = m[2];
    // Accept both the short name ("determinism") and the full id
    // ("R1.determinism").
    std::string name = t.ruleText;
    const std::size_t dot = name.find('.');
    if (dot != std::string::npos)
        name = name.substr(dot + 1);
    if (!ruleFromName(name, t.rule))
        return t;
    t.wellFormed = true;
    return t;
}

void
lintFile(const std::string &rel_path, const std::string &content,
         Result &result)
{
    ++result.filesScanned;
    const FileScope scope = scopeOf(rel_path);

    std::vector<PendingFinding> pending;
    std::vector<std::pair<int, Trailer>> trailers; // line -> trailer

    bool sawPragmaOnce = false;
    std::string guardMacro;  // from #ifndef
    bool guardDefined = false;
    bool sawUsingNamespace = false;
    int usingNamespaceLine = 0;

    ScanState state;
    std::istringstream is(content);
    std::string raw;
    int lineno = 0;
    while (std::getline(is, raw)) {
        ++lineno;
        if (!raw.empty() && raw.back() == '\r')
            raw.pop_back();
        const LineScan scan = scanLine(raw, state);
        const std::string &code = scan.code;

        const Trailer trailer = parseTrailer(scan.comment);
        if (trailer.present && !trailer.wellFormed) {
            pending.push_back(
                {lineno, Rule::Hygiene,
                 "malformed neofog-lint trailer (want "
                 "`neofog-lint: allow(<rule>): <justification>` "
                 "with a known rule and a non-empty justification)"});
        } else if (trailer.wellFormed) {
            trailers.emplace_back(lineno, trailer);
        }

        // --- R4: header hygiene bookkeeping -------------------------
        if (code.find("#pragma") != std::string::npos &&
            code.find("once") != std::string::npos)
            sawPragmaOnce = true;
        {
            static const std::regex ifndef_re(
                R"(^\s*#\s*ifndef\s+([A-Za-z_]\w*))");
            static const std::regex define_re(
                R"(^\s*#\s*define\s+([A-Za-z_]\w*))");
            std::smatch m;
            if (guardMacro.empty() &&
                std::regex_search(code, m, ifndef_re)) {
                guardMacro = m[1];
            } else if (!guardMacro.empty() && !guardDefined &&
                       std::regex_search(code, m, define_re) &&
                       m[1] == guardMacro) {
                guardDefined = true;
            }
        }
        {
            static const std::regex using_re(
                R"(\busing\s+namespace\b)");
            if (!sawUsingNamespace &&
                std::regex_search(code, using_re)) {
                sawUsingNamespace = true;
                usingNamespaceLine = lineno;
            }
        }

        // --- R1: determinism ---------------------------------------
        if (scope.checkDeterminism) {
            for (const TokenBan &ban : determinismBans()) {
                if (std::regex_search(code, ban.pattern)) {
                    pending.push_back(
                        {lineno, Rule::Determinism,
                         std::string("banned source of "
                                     "nondeterminism: ") +
                             ban.what});
                }
            }
        }
        if (scope.checkSeeding && seedsRng(code)) {
            pending.push_back(
                {lineno, Rule::Determinism,
                 "Rng seeded outside the sanctioned fork points "
                 "(receive a stream by value or fork an existing "
                 "one; see src/fog/fog_system.cc)"});
        }

        // --- R2: layer DAG -----------------------------------------
        if (scope.checkLayering) {
            std::string full;
            const std::string target = includeTarget(raw, full);
            if (!target.empty()) {
                if (full.find('/') == std::string::npos) {
                    pending.push_back(
                        {lineno, Rule::Layering,
                         "unqualified local include \"" + full +
                             "\" (use the layer-qualified path, "
                             "e.g. \"sim/types.hh\")"});
                } else {
                    const auto &table = layerTable();
                    const auto it = table.find(scope.layer);
                    const bool known_target =
                        table.count(target) > 0;
                    if (it != table.end() && known_target &&
                        target != scope.layer &&
                        it->second.count(target) == 0) {
                        pending.push_back(
                            {lineno, Rule::Layering,
                             "layer '" + scope.layer +
                                 "' must not include '" + full +
                                 "' (allowed: own layer + " +
                                 [&] {
                                     std::string s;
                                     for (const auto &a : it->second)
                                         s += a + " ";
                                     return s.empty()
                                         ? std::string("nothing")
                                         : s;
                                 }() +
                                 "— see the layer DAG in "
                                 "DESIGN.md)"});
                    }
                }
            }
        }

        // --- R3: observability -------------------------------------
        if (scope.checkObservability) {
            for (const TokenBan &ban : observabilityBans()) {
                if (std::regex_search(code, ban.pattern)) {
                    pending.push_back(
                        {lineno, Rule::Observability,
                         std::string("direct stream output (") +
                             ban.what +
                             ") in routed code; use report_io/"
                             "metrics/logging (src) or bench_util's "
                             "sink (bench)"});
                }
            }
        }
    }

    // --- R4: whole-file header checks ------------------------------
    if (scope.checkHygiene && isHeaderPath(rel_path)) {
        if (!sawPragmaOnce && !((!guardMacro.empty()) && guardDefined))
            pending.push_back(
                {1, Rule::Hygiene,
                 "header lacks an include guard "
                 "(#ifndef/#define pair or #pragma once)"});
        else if (!sawPragmaOnce && !guardMacro.empty() &&
                 !startsWith(guardMacro, "NEOFOG_"))
            pending.push_back(
                {1, Rule::Hygiene,
                 "include guard '" + guardMacro +
                     "' does not follow the NEOFOG_<PATH>_HH "
                     "convention"});
        if (sawUsingNamespace)
            pending.push_back(
                {usingNamespaceLine, Rule::Hygiene,
                 "`using namespace` in a header leaks into every "
                 "includer"});
    }

    // --- apply suppressions ----------------------------------------
    std::set<std::size_t> usedTrailers;
    for (const PendingFinding &f : pending) {
        bool suppressed = false;
        for (std::size_t t = 0; t < trailers.size(); ++t) {
            if (trailers[t].first == f.line &&
                trailers[t].second.rule == f.rule) {
                if (usedTrailers.insert(t).second) {
                    result.suppressions.push_back(
                        {rel_path, f.line, f.rule,
                         trailers[t].second.justification});
                }
                suppressed = true;
                break;
            }
        }
        if (!suppressed)
            result.findings.push_back(
                {rel_path, f.line, f.rule, f.message});
    }
    for (std::size_t t = 0; t < trailers.size(); ++t) {
        // R5-R8 trailers are settled by lintModel once the whole
        // model is collected — not "unused" just because the token
        // passes had nothing to suppress here.
        if (projectRule(trailers[t].second.rule))
            continue;
        if (usedTrailers.count(t) == 0) {
            result.findings.push_back(
                {rel_path, trailers[t].first, Rule::Hygiene,
                 std::string("unused suppression for ") +
                     ruleId(trailers[t].second.rule) +
                     " (nothing to allow on this line — delete "
                     "it)"});
        }
    }
}

int
exitCode(const Result &result)
{
    return result.findings.empty() ? 0 : 1;
}

void
printReport(const Result &result, std::ostream &os)
{
    for (const Finding &f : result.findings) {
        os << f.file << ":" << f.line << ": [" << ruleId(f.rule)
           << "] " << f.message << "\n";
    }
    int counts[kRuleCount] = {};
    for (const Finding &f : result.findings)
        ++counts[static_cast<int>(f.rule)];
    os << "\nneofog_lint: scanned " << result.filesScanned
       << " files: " << result.findings.size() << " violation(s)";
    if (!result.findings.empty()) {
        os << " (";
        bool first = true;
        for (int i = 0; i < kRuleCount; ++i) {
            if (counts[i] == 0)
                continue;
            if (!first)
                os << ", ";
            first = false;
            os << kRuleIds[i] << ": " << counts[i];
        }
        os << ")";
    }
    os << ", " << result.suppressions.size()
       << " suppression(s)\n";
    for (const Suppression &s : result.suppressions) {
        os << "  allowed " << ruleId(s.rule) << " at " << s.file
           << ":" << s.line << " — " << s.justification << "\n";
    }
}

void
printJson(const Result &result, std::ostream &os)
{
    os << "{\n"
       << "  \"schema\": \"neofog-lint-v1\",\n"
       << "  \"files_scanned\": " << result.filesScanned << ",\n"
       << "  \"findings\": [";
    for (std::size_t i = 0; i < result.findings.size(); ++i) {
        const Finding &f = result.findings[i];
        os << (i ? "," : "") << "\n    {\"file\": \""
           << jsonEscape(f.file) << "\", \"line\": " << f.line
           << ", \"rule\": \"" << ruleId(f.rule)
           << "\", \"message\": \"" << jsonEscape(f.message)
           << "\"}";
    }
    os << (result.findings.empty() ? "" : "\n  ") << "],\n"
       << "  \"suppressions\": [";
    for (std::size_t i = 0; i < result.suppressions.size(); ++i) {
        const Suppression &s = result.suppressions[i];
        os << (i ? "," : "") << "\n    {\"file\": \""
           << jsonEscape(s.file) << "\", \"line\": " << s.line
           << ", \"rule\": \"" << ruleId(s.rule)
           << "\", \"justification\": \""
           << jsonEscape(s.justification) << "\"}";
    }
    os << (result.suppressions.empty() ? "" : "\n  ") << "]\n"
       << "}\n";
}

void
printGithub(const Result &result, std::ostream &os)
{
    for (const Finding &f : result.findings) {
        os << "::error file=" << githubEscape(f.file)
           << ",line=" << f.line << ",title=" << ruleId(f.rule)
           << "::" << githubEscape(f.message) << "\n";
    }
    os << "neofog_lint: " << result.findings.size()
       << " violation(s), " << result.suppressions.size()
       << " suppression(s) across " << result.filesScanned
       << " file(s)\n";
}

void
printRules(std::ostream &os)
{
    os << "neofog_lint rules:\n"
       << "  R1.determinism   no rand()/random_device/time()/wall "
          "clocks/thread ids; no Rng\n"
       << "                   seeding outside the sanctioned fork "
          "points (src/, tokens also in bench/)\n"
       << "  R2.layering      src/ includes must follow the layer "
          "DAG: sim -> {hw, energy,\n"
       << "                   workload} -> {node, net, balance} -> "
          "{fog, virt}; snapshot may\n"
       << "                   include everything below fog, only fog "
          "includes snapshot (refined\n"
       << "                   per-dir allowlist; see DESIGN.md)\n"
       << "  R3.observability no direct stdout/stderr writes in src/ "
          "or bench/; route through\n"
       << "                   report_io/metrics/logging or "
          "bench_util's sink\n"
       << "  R4.hygiene       headers need NEOFOG_* include guards "
          "(or #pragma once) and must\n"
       << "                   not say `using namespace`; "
          "suppressions must parse and be used\n"
       << "  R5.snapshot      every data member of a struct with "
          "serialize(Archive&) is\n"
       << "                   referenced inside it (const/reference "
          "members and registry-walked\n"
       << "                   bodies exempt); scratch/derived fields "
          "need allow(snapshot)\n"
       << "  R6.metric        every member of a MetricRegistry-backed "
          "report struct appears as\n"
       << "                   a &Report::member MetricDef\n"
       << "  R7.registry      every ParamSpec a policy registers is "
          "read in its builder\n"
       << "                   (p.i/p.d/p.b) and carries non-empty "
          "docs\n"
       << "  R8.global        no mutable namespace-scope/static-local/"
          "class-static state in\n"
       << "                   src/ (race + determinism hazard); "
          "sanctioned sinks allowlisted\n"
       << "Suppress one line: trailing "
          "`// neofog-lint: allow(<rule>): <justification>`\n";
}

} // namespace neofog::lint
