/**
 * @file
 * neofog_replay — diff two snapshot files or two snapshot streams.
 *
 * Modes:
 *
 *     neofog_replay A.nfsnap B.nfsnap     compare two snapshot files
 *     neofog_replay DIR_A DIR_B           compare two snapshot streams
 *                                         slot-by-slot (paired by the
 *                                         slot encoded in the name)
 *
 * Output names the first diverging slot and field ("chain0.node3.
 * cap.stored: 1.25 vs 1.5"); later differences are suppressed because
 * they are almost always cascade effects of the first.  This turns
 * "two runs disagree" into a bisection: checkpoint both runs on the
 * same slot grid and the first diverging record pinpoints the
 * subsystem that went off-script.
 *
 * Exit codes: 0 identical, 1 diverged, 2 usage or I/O error.
 */

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>

#include "sim/logging.hh"
#include "snapshot/replay.hh"
#include "snapshot/snapshot.hh"

namespace {

using neofog::snapshot::DiffResult;
using neofog::snapshot::Snapshot;

void printDivergence(const std::string &label, const DiffResult &diff)
{
    std::printf("DIVERGED %s [%s]", label.c_str(), diff.where.c_str());
    if (!diff.path.empty())
        std::printf(" %s", diff.path.c_str());
    std::printf(": %s\n", diff.detail.c_str());
}

/** Compare two snapshot files; returns the process exit code. */
int diffFiles(const std::string &pathA, const std::string &pathB,
              const std::string &label)
{
    const Snapshot a = neofog::snapshot::readSnapshot(pathA);
    const Snapshot b = neofog::snapshot::readSnapshot(pathB);
    const DiffResult diff = neofog::snapshot::diffSnapshots(a, b);
    if (!diff.diverged) {
        std::printf("identical %s (slot %" PRId64 ", %zu sections)\n",
                    label.c_str(), a.slot, a.sections.size());
        return 0;
    }
    printDivergence(label, diff);
    return 1;
}

/** Slot -> file map of the snap-*.nfsnap files in a directory. */
std::map<std::int64_t, std::string> snapshotsIn(const std::string &dir)
{
    std::map<std::int64_t, std::string> found;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        long long slot = 0;
        if (std::sscanf(name.c_str(), "snap-%lld.nfsnap", &slot) != 1)
            continue;
        if (name != neofog::snapshot::snapshotFileName(slot))
            continue;
        found[slot] = entry.path().string();
    }
    return found;
}

/** Compare two snapshot directories slot-by-slot, ascending. */
int diffStreams(const std::string &dirA, const std::string &dirB)
{
    const auto snapsA = snapshotsIn(dirA);
    const auto snapsB = snapshotsIn(dirB);
    if (snapsA.empty() || snapsB.empty()) {
        std::fprintf(stderr, "error: no snap-*.nfsnap files in %s\n",
                     (snapsA.empty() ? dirA : dirB).c_str());
        return 2;
    }

    bool unpaired = false;
    for (const auto &[slot, path] : snapsA) {
        const auto other = snapsB.find(slot);
        if (other == snapsB.end()) {
            std::printf("slot %" PRId64 ": only in %s\n", slot,
                        dirA.c_str());
            unpaired = true;
            continue;
        }
        const std::string label = "slot " + std::to_string(slot);
        const int rc = diffFiles(path, other->second, label);
        if (rc != 0)
            return rc; // first diverging slot ends the bisection
    }
    for (const auto &[slot, path] : snapsB)
        if (!snapsA.count(slot)) {
            std::printf("slot %" PRId64 ": only in %s\n", slot,
                        dirB.c_str());
            unpaired = true;
        }
    return unpaired ? 1 : 0;
}

void usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <A.nfsnap> <B.nfsnap>\n"
                 "       %s <snapshot-dir-A> <snapshot-dir-B>\n",
                 argv0, argv0);
}

} // namespace

int main(int argc, char **argv)
{
    if (argc != 3) {
        usage(argv[0]);
        return 2;
    }
    const std::string a = argv[1];
    const std::string b = argv[2];
    try {
        const bool dirA = std::filesystem::is_directory(a);
        const bool dirB = std::filesystem::is_directory(b);
        if (dirA != dirB) {
            std::fprintf(stderr,
                         "error: cannot mix a file and a directory\n");
            return 2;
        }
        return dirA ? diffStreams(a, b) : diffFiles(a, b, "snapshot");
    } catch (const neofog::FatalError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 2;
    } catch (const std::filesystem::filesystem_error &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 2;
    }
}
