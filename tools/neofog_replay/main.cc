/**
 * @file
 * neofog_replay — diff two snapshot files or two snapshot streams.
 *
 * Modes:
 *
 *     neofog_replay A.nfsnap B.nfsnap     compare two snapshot files
 *     neofog_replay DIR_A DIR_B           compare two snapshot streams
 *                                         slot-by-slot (paired by the
 *                                         slot encoded in the name)
 *
 * A directory holding worker0/, worker1/, ... subdirectories (the
 * partitioned layout a distributed run checkpoints into; see
 * src/dist/) is diffed as ONE logical stream: each slot's per-worker
 * files are merged — config/system from worker 0, chain sections in
 * global chain order — after cross-checking that every worker
 * archived the same scenario.  Flat and partitioned streams compare
 * against each other transparently, so "does the --workers 4 run
 * checkpoint the same states as --threads 4?" is one invocation.
 *
 * Output names the first diverging slot and field ("chain0.node3.
 * cap.stored: 1.25 vs 1.5"); later differences are suppressed because
 * they are almost always cascade effects of the first.  This turns
 * "two runs disagree" into a bisection: checkpoint both runs on the
 * same slot grid and the first diverging record pinpoints the
 * subsystem — and, in a partitioned diff, the chain and therefore the
 * worker — that went off-script.
 *
 * Exit codes: 0 identical, 1 diverged, 2 usage or I/O error.
 */

#include <algorithm>
#include <cinttypes>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "snapshot/replay.hh"
#include "snapshot/snapshot.hh"

namespace {

using neofog::snapshot::DiffResult;
using neofog::snapshot::Section;
using neofog::snapshot::Snapshot;

void printDivergence(const std::string &label, const DiffResult &diff)
{
    std::printf("DIVERGED %s [%s]", label.c_str(), diff.where.c_str());
    if (!diff.path.empty())
        std::printf(" %s", diff.path.c_str());
    std::printf(": %s\n", diff.detail.c_str());
}

/** Compare two loaded snapshots; returns the process exit code. */
int diffLoaded(const Snapshot &a, const Snapshot &b,
               const std::string &label)
{
    const DiffResult diff = neofog::snapshot::diffSnapshots(a, b);
    if (!diff.diverged) {
        std::printf("identical %s (slot %" PRId64 ", %zu sections)\n",
                    label.c_str(), a.slot, a.sections.size());
        return 0;
    }
    printDivergence(label, diff);
    return 1;
}

/** Compare two snapshot files; returns the process exit code. */
int diffFiles(const std::string &pathA, const std::string &pathB,
              const std::string &label)
{
    return diffLoaded(neofog::snapshot::readSnapshot(pathA),
                      neofog::snapshot::readSnapshot(pathB), label);
}

/** Slot -> file map of the snap-*.nfsnap files in a directory. */
std::map<std::int64_t, std::string> snapshotsIn(const std::string &dir)
{
    std::map<std::int64_t, std::string> found;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        long long slot = 0;
        if (std::sscanf(name.c_str(), "snap-%lld.nfsnap", &slot) != 1)
            continue;
        if (name != neofog::snapshot::snapshotFileName(slot))
            continue;
        found[slot] = entry.path().string();
    }
    return found;
}

/** worker0, worker1, ... subdirectory paths; empty when @p dir is flat. */
std::vector<std::string> workerDirsIn(const std::string &dir)
{
    std::vector<std::string> dirs;
    for (std::size_t w = 0;; ++w) {
        const std::string sub = dir + "/worker" + std::to_string(w);
        if (!std::filesystem::is_directory(sub))
            break;
        dirs.push_back(sub);
    }
    return dirs;
}

/** Chain index of a "chain<k>" section name, or -1 for other names. */
long long chainIndexOf(const std::string &name)
{
    long long idx = -1;
    if (std::sscanf(name.c_str(), "chain%lld", &idx) != 1 || idx < 0)
        return -1;
    if (name != "chain" + std::to_string(idx))
        return -1;
    return idx;
}

/**
 * Merge one slot's per-worker snapshot files (worker order) into the
 * flat section layout: config and system from worker 0, then every
 * chain section in global chain order — the exact order a
 * single-process checkpoint writes, so diffSnapshots() pairs sections
 * without knowing the stream was partitioned.
 */
Snapshot loadMergedSlot(const std::vector<std::string> &paths)
{
    Snapshot merged;
    std::map<long long, Section> chains;
    for (std::size_t w = 0; w < paths.size(); ++w) {
        const Snapshot part = neofog::snapshot::readSnapshot(paths[w]);
        if (w == 0) {
            merged.slot = part.slot;
            merged.configHash = part.configHash;
            merged.seed = part.seed;
            merged.chains = part.chains;
            for (const auto &section : part.sections)
                if (chainIndexOf(section.name) < 0)
                    merged.sections.push_back(section);
        } else if (part.configHash != merged.configHash
                   || part.seed != merged.seed
                   || part.slot != merged.slot
                   || part.chains != merged.chains) {
            neofog::fatal("worker ", w, " snapshot ", paths[w],
                          " disagrees with worker 0 on scenario/slot",
                          " — mixed runs in one partitioned directory?");
        }
        for (const auto &section : part.sections) {
            const long long idx = chainIndexOf(section.name);
            if (idx < 0)
                continue;
            if (!chains.emplace(idx, section).second)
                neofog::fatal("chain ", idx,
                              " archived by two workers (second copy in ",
                              paths[w], ") — overlapping partitions?");
        }
    }
    for (auto &[idx, section] : chains) {
        (void)idx;
        merged.sections.push_back(std::move(section));
    }
    return merged;
}

/** One logical snapshot stream: slot -> the files composing it. */
struct Stream
{
    std::string dir;
    std::vector<std::string> workers; ///< empty for a flat directory
    std::map<std::int64_t, std::vector<std::string>> slots;
};

/**
 * Index a snapshot directory, flat or partitioned.  In a partitioned
 * directory a slot only qualifies when EVERY worker checkpointed it —
 * a worker killed mid-checkpoint leaves a file behind on some workers
 * only, and diffing that torn set would masquerade as divergence.
 */
Stream openStream(const std::string &dir)
{
    Stream stream;
    stream.dir = dir;
    stream.workers = workerDirsIn(dir);
    if (stream.workers.empty()) {
        for (const auto &[slot, path] : snapshotsIn(dir))
            stream.slots[slot] = {path};
        return stream;
    }
    std::map<std::int64_t, std::vector<std::string>> partial;
    for (const auto &wdir : stream.workers)
        for (const auto &[slot, path] : snapshotsIn(wdir))
            partial[slot].push_back(path);
    for (auto &[slot, paths] : partial) {
        if (paths.size() == stream.workers.size())
            stream.slots[slot] = std::move(paths);
        else
            std::printf("slot %" PRId64 ": incomplete in %s (%zu/%zu "
                        "workers), skipped\n",
                        slot, dir.c_str(), paths.size(),
                        stream.workers.size());
    }
    return stream;
}

/** Load a slot's snapshot, merging per-worker shards when needed. */
Snapshot loadSlot(const Stream &stream,
                  const std::vector<std::string> &paths)
{
    if (stream.workers.empty())
        return neofog::snapshot::readSnapshot(paths.front());
    return loadMergedSlot(paths);
}

/** Compare two snapshot directories slot-by-slot, ascending. */
int diffStreams(const std::string &dirA, const std::string &dirB)
{
    const Stream a = openStream(dirA);
    const Stream b = openStream(dirB);
    for (const Stream *stream : {&a, &b})
        if (!stream->workers.empty())
            std::printf("%s: partitioned layout, %zu workers\n",
                        stream->dir.c_str(), stream->workers.size());
    if (a.slots.empty() || b.slots.empty()) {
        std::fprintf(stderr, "error: no snap-*.nfsnap files in %s\n",
                     (a.slots.empty() ? dirA : dirB).c_str());
        return 2;
    }

    bool unpaired = false;
    for (const auto &[slot, paths] : a.slots) {
        const auto other = b.slots.find(slot);
        if (other == b.slots.end()) {
            std::printf("slot %" PRId64 ": only in %s\n", slot,
                        dirA.c_str());
            unpaired = true;
            continue;
        }
        const std::string label = "slot " + std::to_string(slot);
        const int rc = diffLoaded(loadSlot(a, paths),
                                  loadSlot(b, other->second), label);
        if (rc != 0)
            return rc; // first diverging slot ends the bisection
    }
    for (const auto &[slot, paths] : b.slots)
        if (!a.slots.count(slot)) {
            std::printf("slot %" PRId64 ": only in %s\n", slot,
                        dirB.c_str());
            unpaired = true;
        }
    return unpaired ? 1 : 0;
}

void usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <A.nfsnap> <B.nfsnap>\n"
                 "       %s <snapshot-dir-A> <snapshot-dir-B>\n"
                 "\n"
                 "Directories holding worker0/, worker1/, ... (the\n"
                 "partitioned layout of a --workers run) are merged\n"
                 "per slot and diff transparently against flat or\n"
                 "partitioned streams.\n",
                 argv0, argv0);
}

} // namespace

int main(int argc, char **argv)
{
    if (argc != 3) {
        usage(argv[0]);
        return 2;
    }
    const std::string a = argv[1];
    const std::string b = argv[2];
    try {
        const bool dirA = std::filesystem::is_directory(a);
        const bool dirB = std::filesystem::is_directory(b);
        if (dirA != dirB) {
            std::fprintf(stderr,
                         "error: cannot mix a file and a directory\n");
            return 2;
        }
        return dirA ? diffStreams(a, b) : diffFiles(a, b, "snapshot");
    } catch (const neofog::FatalError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 2;
    } catch (const std::filesystem::filesystem_error &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 2;
    }
}
